#include "obs/report.h"

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string_view>

#include "obs/log.h"
#include "util/format.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define HAVE_GETRUSAGE 1
#endif

namespace cs::obs {
namespace {

void json_escape_into(std::string& out, std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

#ifdef HAVE_GETRUSAGE
std::uint64_t timeval_us(const timeval& tv) noexcept {
  return static_cast<std::uint64_t>(tv.tv_sec) * 1'000'000u +
         static_cast<std::uint64_t>(tv.tv_usec);
}
#endif

/// "VmHWM:    12345 kB" -> 12345. Returns 0 when the label is absent.
std::int64_t proc_status_kb(std::string_view status, std::string_view label) {
  const auto pos = status.find(label);
  if (pos == std::string_view::npos) return 0;
  const char* p = status.data() + pos + label.size();
  return static_cast<std::int64_t>(std::strtoll(p, nullptr, 10));
}

}  // namespace

ResourceUsage resource_usage() noexcept {
  ResourceUsage usage;
#ifdef HAVE_GETRUSAGE
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.user_cpu_us = timeval_us(ru.ru_utime);
    usage.system_cpu_us = timeval_us(ru.ru_stime);
    usage.peak_rss_kb = ru.ru_maxrss;  // kilobytes on Linux
  }
#endif
  // /proc refines the picture where it exists: VmHWM matches ru_maxrss,
  // VmRSS adds the *current* resident size (which rusage cannot report).
  std::ifstream proc{"/proc/self/status", std::ios::binary};
  if (proc) {
    std::string status{std::istreambuf_iterator<char>{proc},
                       std::istreambuf_iterator<char>{}};
    if (const auto hwm = proc_status_kb(status, "VmHWM:"); hwm > 0)
      usage.peak_rss_kb = hwm;
    usage.current_rss_kb = proc_status_kb(status, "VmRSS:");
  }
  return usage;
}

RunReport RunReport::capture(std::string name) {
  RunReport report;
  report.name = std::move(name);
  report.wall_ms = Tracer::instance().epoch_now_us() / 1000.0;
  report.resources = resource_usage();
  report.stages = Tracer::instance().stats();
  report.metrics = MetricsRegistry::instance().snapshot();
  return report;
}

void RunReport::sample_counter_lane() {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  const ResourceUsage usage = resource_usage();
  tracer.record_counter("proc.rss_kb",
                        static_cast<double>(usage.current_rss_kb != 0
                                                ? usage.current_rss_kb
                                                : usage.peak_rss_kb));
  tracer.record_counter(
      "exec.pool.max_queue_depth",
      static_cast<double>(gauge("exec.pool.max_queue_depth").value()));
}

std::string RunReport::to_json() const {
  std::string out;
  out += "{\n  \"bench\": \"";
  json_escape_into(out, name);
  out += "\",\n  \"wall_ms\": ";
  out += util::fmt("{:.3f}", wall_ms);
  out += util::fmt(",\n  \"threads\": {}", threads);
  if (baseline_wall_ms > 0.0 && wall_ms > 0.0) {
    out += util::fmt(",\n  \"baseline_wall_ms\": {:.3f}", baseline_wall_ms);
    out += util::fmt(",\n  \"speedup\": {:.3f}", baseline_wall_ms / wall_ms);
  }
  out += util::fmt(
      ",\n  \"resources\": {{\"user_cpu_ms\": {:.3f}, "
      "\"system_cpu_ms\": {:.3f}, \"peak_rss_kb\": {}, "
      "\"current_rss_kb\": {}}}",
      resources.user_cpu_us / 1000.0, resources.system_cpu_us / 1000.0,
      static_cast<std::uint64_t>(resources.peak_rss_kb < 0
                                     ? 0
                                     : resources.peak_rss_kb),
      static_cast<std::uint64_t>(resources.current_rss_kb < 0
                                     ? 0
                                     : resources.current_rss_kb));
  {
    std::int64_t max_depth = 0;
    for (const auto& g : metrics.gauges)
      if (g.name == "exec.pool.max_queue_depth") max_depth = g.value;
    out += util::fmt(
        ",\n  \"pool\": {{\"tasks\": {}, \"steals\": {}, "
        "\"max_queue_depth\": {}}}",
        metrics.counter("exec.pool.tasks"),
        metrics.counter("exec.pool.steals"),
        static_cast<std::uint64_t>(max_depth < 0 ? 0 : max_depth));
  }
  // What ran, not just how fast: checkpoint traffic and injected faults.
  out += util::fmt(
      ",\n  \"snap\": {{\"stages_built\": {}, \"stages_resumed\": {}, "
      "\"supervisor_retries\": {}}}",
      metrics.counter("study.stages_built"),
      metrics.counter("study.stages_resumed"),
      metrics.counter("snap.supervisor.retries"));
  {
    std::uint64_t total = 0;
    std::string events;
    for (const auto& c : metrics.counters) {
      constexpr std::string_view prefix = "fault.";
      if (c.name.size() <= prefix.size() ||
          std::string_view{c.name}.substr(0, prefix.size()) != prefix)
        continue;
      total += c.value;
      events += ", \"";
      json_escape_into(events, c.name.substr(prefix.size()));
      events += util::fmt("\": {}", c.value);
    }
    out += util::fmt(",\n  \"fault\": {{\"total\": {}{}}}", total, events);
  }
  // The socket client's resilience behaviour rides the perf manifests so
  // a trajectory regression can be told apart from a wire that got sick:
  // retransmit/expiry volume, breaker and budget activity, and the
  // adaptive RTO's percentiles.
  {
    double rto_p50 = 0.0;
    double rto_p99 = 0.0;
    std::uint64_t rto_count = 0;
    for (const auto& h : metrics.histograms)
      if (h.name == "netio.client.rto_us") {
        rto_count = h.count;
        rto_p50 = h.quantile(0.50);
        rto_p99 = h.quantile(0.99);
      }
    out += util::fmt(
        ",\n  \"resilience\": {{\"retransmits\": {}, \"expirations\": {}, "
        "\"breaker_trips\": {}, \"breaker_fastfails\": {}, "
        "\"retry_budget_rejections\": {}, \"chaos_drops\": {}, "
        "\"chaos_dups\": {}, \"chaos_corrupts\": {}, "
        "\"chaos_forced_deliveries\": {}, "
        "\"rto_us\": {{\"count\": {}, \"p50\": {:.3f}, \"p99\": {:.3f}}}}}",
        metrics.counter("netio.client.retransmits"),
        metrics.counter("netio.client.expirations"),
        metrics.counter("netio.client.breaker_trips"),
        metrics.counter("netio.client.breaker_fastfails"),
        metrics.counter("netio.client.retry_budget_rejections"),
        metrics.counter("netio.chaos.drops"),
        metrics.counter("netio.chaos.dups"),
        metrics.counter("netio.chaos.corrupts"),
        metrics.counter("netio.chaos.forced_deliveries"), rto_count, rto_p50,
        rto_p99);
  }
  out += ",\n  \"stages\": [";
  bool first = true;
  for (const auto& stage : stages) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"name\": \"";
    json_escape_into(out, stage.name);
    out += util::fmt(
        "\", \"count\": {}, \"total_ms\": {:.3f}, \"self_ms\": {:.3f}}}",
        stage.count, stage.total_us / 1000.0, stage.self_us / 1000.0);
  }
  out += "\n  ],\n  \"percentiles\": {";
  first = true;
  for (const auto& h : metrics.histograms) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    json_escape_into(out, h.name);
    out += util::fmt(
        "\": {{\"count\": {}, \"p50\": {:.3f}, \"p90\": {:.3f}, "
        "\"p99\": {:.3f}}}",
        h.count, h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
  }
  out += "\n  },\n  \"counters\": {";
  first = true;
  for (const auto& c : metrics.counters) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    json_escape_into(out, c.name);
    out += util::fmt("\": {}", c.value);
  }
  out += "\n  }\n}\n";
  return out;
}

bool RunReport::write(const std::string& path) const {
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) {
    log_error("obs.report", "cannot open run-report path '{}'", path);
    return false;
  }
  file << to_json();
  if (!file.good()) {
    log_error("obs.report", "short write to run-report path '{}'", path);
    return false;
  }
  return true;
}

}  // namespace cs::obs
