#include "obs/trace.h"

#include <chrono>
#include <fstream>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/sync.h"
#include "util/table.h"

namespace cs::obs {
namespace {

/// Index into Tracer::events_ of the innermost open span on this thread.
/// Per-thread span cursors: never shared across threads, so the C1
/// shared-state hazard does not apply.
thread_local std::int32_t tls_current_span = -1;  // cslint:allow(C1): per-thread span cursor, see above
thread_local std::int32_t tls_depth = 0;          // cslint:allow(C1): per-thread nesting depth, see above

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void json_escape(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::uint64_t steady_now_us() noexcept {
  return static_cast<std::uint64_t>(steady_now_ns() / 1000);
}

Tracer::Tracer() : epoch_ns_(steady_now_ns()) {
  // The thread constructing the tracer is, in practice, the program's main
  // thread; give its lane a readable name up front.
  thread_names_[thread_ordinal()] = "main";
  if (const auto path = util::env_text(util::Knob::kTrace))
    enable_export(*path);
}

Tracer& Tracer::instance() {
  // Intentionally leaked so atexit exporters can run after every other
  // static destructor (see MetricsRegistry::instance for the rationale).
  static Tracer* tracer = new Tracer;
  return *tracer;
}

void Tracer::enable_collection() {
  enabled_.store(true, std::memory_order_relaxed);
  // A trace without its work counters is half a picture; collecting spans
  // implies collecting the per-packet metrics too.
  set_detailed_metrics(true);
}

void Tracer::enable_export(std::string path) {
  {
    util::LockGuard lock{mutex_};
    const bool first_export = export_path_.empty();
    export_path_ = std::move(path);
    if (first_export)
      std::atexit(+[] {
        Tracer& tracer = Tracer::instance();
        std::string path;
        {
          util::LockGuard exit_lock{tracer.mutex_};
          path = tracer.export_path_;
        }
        if (!path.empty()) tracer.write_chrome_json(path);
      });
  }
  enable_collection();
}

void Tracer::disable() noexcept {
  enabled_.store(false, std::memory_order_relaxed);
}

void Tracer::clear() {
  util::LockGuard lock{mutex_};
  events_.clear();
  counter_events_.clear();
}

void Tracer::record_counter(std::string_view name, double value) {
  if (!enabled()) return;
  const std::uint64_t ts = epoch_now_us();
  util::LockGuard lock{mutex_};
  CounterEvent event;
  event.name.assign(name);
  event.ts_us = ts;
  event.value = value;
  counter_events_.push_back(std::move(event));
}

std::vector<CounterEvent> Tracer::counter_events() const {
  util::LockGuard lock{mutex_};
  return counter_events_;
}

std::uint64_t Tracer::epoch_now_us() const noexcept {
  return static_cast<std::uint64_t>((steady_now_ns() - epoch_ns_) / 1000);
}

std::uint32_t Tracer::thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void Tracer::set_thread_name(std::string name) {
  util::LockGuard lock{mutex_};
  thread_names_[thread_ordinal()] = std::move(name);
}

std::vector<std::pair<std::uint32_t, std::string>> Tracer::thread_names()
    const {
  util::LockGuard lock{mutex_};
  return {thread_names_.begin(), thread_names_.end()};
}

std::int32_t Tracer::record(std::string_view name, std::uint64_t start_us,
                            std::uint64_t dur_us, std::int32_t parent,
                            std::int32_t depth, std::uint32_t tid) {
  util::LockGuard lock{mutex_};
  SpanEvent event;
  event.name.assign(name);
  event.start_us = start_us;
  event.dur_us = dur_us;
  event.tid = tid;
  event.parent = parent;
  event.depth = depth;
  events_.push_back(std::move(event));
  return static_cast<std::int32_t>(events_.size() - 1);
}

void Tracer::patch_duration(std::int32_t index, std::uint64_t dur_us) {
  util::LockGuard lock{mutex_};
  if (index < 0 || static_cast<std::size_t>(index) >= events_.size()) return;
  events_[static_cast<std::size_t>(index)].dur_us = dur_us;
}

std::vector<SpanEvent> Tracer::events() const {
  util::LockGuard lock{mutex_};
  return events_;
}

std::vector<SpanStats> Tracer::stats() const {
  const auto evs = events();
  std::vector<SpanStats> out;
  // Direct-child time per event, for self-time.
  std::vector<std::uint64_t> child_us(evs.size(), 0);
  for (const auto& e : evs)
    if (e.parent >= 0 && static_cast<std::size_t>(e.parent) < evs.size())
      child_us[static_cast<std::size_t>(e.parent)] += e.dur_us;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const auto& e = evs[i];
    SpanStats* stats = nullptr;
    for (auto& s : out)
      if (s.name == e.name) {
        stats = &s;
        break;
      }
    if (!stats) {
      out.push_back(SpanStats{.name = e.name});
      stats = &out.back();
    }
    ++stats->count;
    stats->total_us += e.dur_us;
    const std::uint64_t self =
        e.dur_us > child_us[i] ? e.dur_us - child_us[i] : 0;
    stats->self_us += self;
    stats->max_us = std::max(stats->max_us, e.dur_us);
  }
  return out;
}

std::string Tracer::chrome_json() const {
  const auto evs = events();
  std::string out;
  out.reserve(128 + evs.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Lane-name metadata first, so viewers label pool workers before any
  // span event references their tid.
  for (const auto& [tid, name] : thread_names()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    json_escape(out, name);
    out += "\"}}";
  }
  for (const auto& e : evs) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape(out, e.name);
    out += "\",\"cat\":\"cs\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    out += std::to_string(e.start_us);
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(e.depth);
    out += "}}";
  }
  // Counter lanes last: "C" events render as per-name area tracks in
  // Perfetto (queue depth, RSS) under the same pid as the span lanes.
  for (const auto& c : counter_events()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape(out, c.name);
    out += "\",\"cat\":\"cs\",\"ph\":\"C\",\"pid\":1,\"ts\":";
    out += std::to_string(c.ts_us);
    char value[64];
    std::snprintf(value, sizeof(value), "%.3f", c.value);
    out += ",\"args\":{\"value\":";
    out += value;
    out += "}}";
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) {
    log_error("obs.trace", "cannot open trace output '{}'", path);
    return false;
  }
  file << chrome_json();
  if (!file.good()) {
    log_error("obs.trace", "short write to trace output '{}'", path);
    return false;
  }
  log_info("obs.trace", "wrote chrome trace to {}", path);
  return true;
}

std::string Tracer::render_summary() const {
  util::Table table{{"span", "count", "total ms", "self ms", "max ms"}};
  table.caption("Pipeline span summary");
  for (const auto& s : stats())
    table.add(s.name, s.count, s.total_us / 1000.0, s.self_us / 1000.0,
              s.max_us / 1000.0);
  return table.render();
}

Span::Span(std::string_view name) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  name_ = name;
  start_us_ = tracer.epoch_now_us();
  parent_ = tls_current_span;
  depth_ = tls_depth;
  // Reserve the event now so children (which close first) can point at it.
  tls_current_span = tracer.record(name_, start_us_, 0, parent_, depth_,
                                   Tracer::thread_ordinal());
  ++tls_depth;
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  Tracer& tracer = Tracer::instance();
  tracer.patch_duration(tls_current_span, tracer.epoch_now_us() - start_us_);
  tls_current_span = parent_;
  --tls_depth;
}

}  // namespace cs::obs
