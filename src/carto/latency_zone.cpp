#include "carto/latency_zone.h"

#include <algorithm>

namespace cs::carto {

LatencyZoneEstimator::LatencyZoneEstimator(cloud::Provider& ec2,
                                           internet::WideAreaModel& model,
                                           Options options)
    : ec2_(ec2), model_(model), options_(std::move(options)) {
  for (const auto& region : ec2_.regions()) {
    // US East gets extra small probes, as in the paper.
    const int per_zone = region.name == "ec2.us-east-1"
                             ? options_.probe_instances_per_zone + 3
                             : options_.probe_instances_per_zone;
    for (int label = 0; label < region.zone_count; ++label) {
      if (options_.blocked_probe_zones.contains({region.name, label}))
        continue;
      for (int i = 0; i < per_zone; ++i) {
        const auto& probe = ec2_.launch(
            {.account = options_.probe_account,
             .region = region.name,
             .zone_label = label,
             .type = i < options_.probe_instances_per_zone ? "m1.medium"
                                                           : "m1.small"});
        probes_[region.name][label].push_back(&probe);
      }
    }
  }
}

std::vector<int> LatencyZoneEstimator::probe_labels(
    const std::string& region) const {
  std::vector<int> labels;
  if (const auto it = probes_.find(region); it != probes_.end())
    for (const auto& [label, instances] : it->second)
      labels.push_back(label);
  return labels;
}

LatencyZoneEstimator::Estimate LatencyZoneEstimator::estimate(
    net::Ipv4 target_public_ip, const std::string& region) {
  Estimate result;
  const auto* target = ec2_.find_by_public_ip(target_public_ip);
  if (!target || model_.instance_unresponsive(*target)) return result;
  result.responded = true;

  const auto it = probes_.find(region);
  if (it == probes_.end()) return result;

  // Min RTT per probe label over rounds x probes (both the internal and
  // public address were probed in the paper; the minimum is what counts).
  std::map<int, double> min_rtt;
  for (const auto& [label, instances] : it->second) {
    double best = 1e18;
    for (const auto* probe : instances) {
      for (int round = 0; round < options_.rounds; ++round) {
        for (int ping = 0; ping < options_.probes_per_round; ++ping) {
          clock_ += 0.5;
          best = std::min(best, model_.instance_rtt_sample(
                                    ec2_, *probe, *target,
                                    clock_ + round * 86400.0));
        }
      }
    }
    min_rtt[label] = best;
  }
  if (min_rtt.empty()) return result;

  // Unique fastest label under the threshold wins.
  int best_label = -1;
  double best = 1e18, second = 1e18;
  for (const auto& [label, rtt] : min_rtt) {
    if (rtt < best) {
      second = best;
      best = rtt;
      best_label = label;
    } else {
      second = std::min(second, rtt);
    }
  }
  // A tie (within measurement resolution) yields unknown, as does a
  // minimum above the threshold.
  if (best >= options_.threshold_ms || second - best < 1e-3) return result;
  result.zone_label = best_label;
  return result;
}

int LatencyZoneEstimator::label_to_physical(const std::string& region,
                                            int label) const {
  return ec2_.physical_zone(options_.probe_account, region, label);
}

}  // namespace cs::carto
