#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "util/rng.h"

/// Address-proximity zone identification (§4.3, after Ristenpart et al.):
/// sample instances from several accounts, exploit the fact that one
/// internal /16 holds instances of a single zone, and merge the accounts'
/// inconsistent zone *labels* by finding, per account pair, the label
/// permutation that maximizes /16 agreement.
///
/// The estimator's output labels live in the canonical account's label
/// space (as the paper's did); `label_to_physical` can translate them for
/// scoring against simulator ground truth.
namespace cs::carto {

class ProximityEstimator {
 public:
  struct Options {
    std::uint64_t seed = 99;
    /// Total sampled instances across accounts and regions (the paper
    /// accumulated 5096).
    std::size_t total_samples = 900;
    std::size_t accounts = 10;
    std::string canonical_account = "carto-main";
  };

  /// Launches the sample instances (mutates the provider) and calibrates
  /// the merged /16 -> zone-label map.
  ProximityEstimator(cloud::Provider& ec2, Options options);

  /// Zone label (canonical account space) for a public instance address;
  /// nullopt when the instance is unknown or its /16 was never sampled.
  std::optional<int> zone_of(net::Ipv4 public_ip) const;

  /// Same, for an already-known internal address.
  std::optional<int> zone_of_internal(net::Ipv4 internal_ip) const;

  /// Fraction of this region's observed instance /16s that are labeled.
  double coverage(const std::string& region,
                  const std::vector<net::Ipv4>& public_ips) const;

  /// Figure 7: the sampled (internal address, merged label) map.
  struct MapPoint {
    net::Ipv4 internal_ip;
    int merged_label;
  };
  std::vector<MapPoint> sample_map() const;

  /// Translates a canonical-space label to the physical zone (uses the
  /// provider's account permutation; for scoring only).
  int label_to_physical(const std::string& region, int label) const;

  std::size_t labeled_blocks() const noexcept { return block_label_.size(); }

 private:
  struct Sample {
    std::string account;
    std::string region;
    int label;  ///< the account's own zone label
    net::Ipv4 internal_ip;
  };

  void calibrate(const std::vector<Sample>& samples);

  cloud::Provider& ec2_;
  Options options_;
  /// internal /16 (second octet) -> canonical-space label.
  std::map<int, int> block_label_;
};

}  // namespace cs::carto
