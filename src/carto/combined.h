#pragma once

#include "carto/latency_zone.h"
#include "carto/proximity.h"

/// Combined zone identification (§4.3): address proximity first (it is
/// the more reliable signal), latency probing for the /16s proximity
/// never sampled. The paper reached 87% identification this way.
namespace cs::carto {

class CombinedZoneEstimator {
 public:
  /// Both estimators must share the same canonical/probe account so their
  /// label spaces coincide (this mirrors the paper, where both methods
  /// ran from the authors' accounts).
  CombinedZoneEstimator(ProximityEstimator& proximity,
                        LatencyZoneEstimator& latency)
      : proximity_(proximity), latency_(latency) {}

  struct Estimate {
    std::optional<int> zone_label;
    enum class Source { kProximity, kLatency, kUnknown } source =
        Source::kUnknown;
  };

  Estimate estimate(net::Ipv4 target_public_ip, const std::string& region) {
    if (const auto label = proximity_.zone_of(target_public_ip))
      return {label, Estimate::Source::kProximity};
    const auto lat = latency_.estimate(target_public_ip, region);
    if (lat.zone_label)
      return {lat.zone_label, Estimate::Source::kLatency};
    return {};
  }

  int label_to_physical(const std::string& region, int label) const {
    return proximity_.label_to_physical(region, label);
  }

 private:
  ProximityEstimator& proximity_;
  LatencyZoneEstimator& latency_;
};

}  // namespace cs::carto
