#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "internet/model.h"

/// Latency-based zone identification (§4.3): probe instances in each
/// zone TCP-ping a target; the min RTT per zone is compared against a
/// threshold T. Same-zone RTT (~0.5 ms) sits well under T = 1.1 ms while
/// cross-zone RTT (1.2+ ms) sits above, so the zone whose probes are
/// uniquely fast wins; ties and slow minima yield "unknown".
namespace cs::carto {

class LatencyZoneEstimator {
 public:
  struct Options {
    std::uint64_t seed = 7;
    double threshold_ms = 1.1;
    int probes_per_round = 10;  ///< hping3-style pings per probe instance
    int rounds = 5;             ///< repetitions across days
    std::string probe_account = "carto-main";
    int probe_instances_per_zone = 3;
    /// (region, zone label) pairs where probe instances cannot be
    /// launched. The paper could not launch in one ap-northeast-1 zone
    /// after January 2013, driving that region's 50.7% unknown rate.
    std::set<std::pair<std::string, int>> blocked_probe_zones = {
        {"ec2.ap-northeast-1", 1}};
  };

  /// Launches the probe fleet (mutates the provider).
  LatencyZoneEstimator(cloud::Provider& ec2, internet::WideAreaModel& model,
                       Options options);

  struct Estimate {
    bool responded = false;
    std::optional<int> zone_label;  ///< probe-account label space
  };

  /// Estimates the zone of one target public IP in `region`.
  Estimate estimate(net::Ipv4 target_public_ip, const std::string& region);

  /// Labels with live probe instances for a region.
  std::vector<int> probe_labels(const std::string& region) const;

  int label_to_physical(const std::string& region, int label) const;

 private:
  cloud::Provider& ec2_;
  internet::WideAreaModel& model_;
  Options options_;
  /// region -> label -> probe instance ids.
  std::map<std::string, std::map<int, std::vector<const cloud::Instance*>>>
      probes_;
  double clock_ = 0.0;  ///< advances between probe rounds
};

}  // namespace cs::carto
