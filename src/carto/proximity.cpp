#include "carto/proximity.h"

#include <algorithm>
#include <numeric>

namespace cs::carto {

ProximityEstimator::ProximityEstimator(cloud::Provider& ec2, Options options)
    : ec2_(ec2), options_(std::move(options)) {
  util::Rng rng{options_.seed};
  std::vector<Sample> samples;
  samples.reserve(options_.total_samples);

  // Spread samples across accounts and regions (heavier in big regions,
  // mirroring where tenants actually launch).
  const auto& regions = ec2_.regions();
  std::vector<double> region_weights;
  for (const auto& region : regions)
    region_weights.push_back(region.name == "ec2.us-east-1" ? 6.0 : 1.0);

  for (std::size_t i = 0; i < options_.total_samples; ++i) {
    const std::size_t account_idx =
        i % options_.accounts;  // round robin accounts
    const std::string account =
        account_idx == 0
            ? options_.canonical_account
            : "carto-acct-" + std::to_string(account_idx);
    const auto& region = regions[rng.weighted_pick(region_weights)];
    const int label = static_cast<int>(rng.next_below(region.zone_count));
    const auto& inst = ec2_.launch({.account = account,
                                    .region = region.name,
                                    .zone_label = label,
                                    .type = "t1.micro"});
    samples.push_back({account, region.name, label, inst.internal_ip});
  }
  calibrate(samples);
}

void ProximityEstimator::calibrate(const std::vector<Sample>& samples) {
  // Work region by region: labels are only meaningful within a region.
  std::map<std::string, std::vector<const Sample*>> by_region;
  for (const auto& s : samples) by_region[s.region].push_back(&s);

  for (const auto& [region_name, region_samples] : by_region) {
    const auto* region = ec2_.region(region_name);
    const int zones = region ? region->zone_count : 1;

    // Group samples per account.
    std::map<std::string, std::vector<const Sample*>> by_account;
    for (const auto* s : region_samples) by_account[s->account].push_back(s);

    // Seed the merged map from the canonical account.
    std::map<int, int> merged;  // /16 second octet -> canonical label
    if (const auto it = by_account.find(options_.canonical_account);
        it != by_account.end()) {
      for (const auto* s : it->second)
        merged[s->internal_ip.octet(1)] = s->label;
    }

    // Greedy pairwise merging: for each further account, pick the label
    // permutation maximizing /16 agreement with the merged map, then fold
    // its samples in (the paper's iterative approach).
    for (const auto& [account, account_samples] : by_account) {
      if (account == options_.canonical_account) continue;
      std::vector<int> perm(zones);
      std::iota(perm.begin(), perm.end(), 0);
      std::vector<int> best_perm = perm;
      int best_score = -1;
      do {
        int score = 0;
        for (const auto* s : account_samples) {
          const auto it = merged.find(s->internal_ip.octet(1));
          if (it != merged.end() && it->second == perm[s->label]) ++score;
        }
        if (score > best_score) {
          best_score = score;
          best_perm = perm;
        }
      } while (std::next_permutation(perm.begin(), perm.end()));

      for (const auto* s : account_samples)
        merged.emplace(s->internal_ip.octet(1), best_perm[s->label]);
    }

    for (const auto& [block, label] : merged) block_label_[block] = label;
  }
}

std::optional<int> ProximityEstimator::zone_of(net::Ipv4 public_ip) const {
  const auto internal = ec2_.internal_ip_of(public_ip);
  if (!internal) return std::nullopt;
  return zone_of_internal(*internal);
}

std::optional<int> ProximityEstimator::zone_of_internal(
    net::Ipv4 internal_ip) const {
  if (internal_ip.octet(0) != 10) return std::nullopt;  // not EC2-internal
  const auto it = block_label_.find(internal_ip.octet(1));
  if (it == block_label_.end()) return std::nullopt;
  return it->second;
}

double ProximityEstimator::coverage(
    const std::string& region, const std::vector<net::Ipv4>& public_ips)
    const {
  (void)region;
  if (public_ips.empty()) return 0.0;
  std::size_t known = 0;
  for (const auto ip : public_ips)
    if (zone_of(ip)) ++known;
  return static_cast<double>(known) / static_cast<double>(public_ips.size());
}

std::vector<ProximityEstimator::MapPoint> ProximityEstimator::sample_map()
    const {
  std::vector<MapPoint> points;
  for (const auto& [block, label] : block_label_) {
    points.push_back(
        {net::Ipv4{static_cast<std::uint32_t>((10u << 24) | (block << 16))},
         label});
  }
  return points;
}

int ProximityEstimator::label_to_physical(const std::string& region,
                                          int label) const {
  return ec2_.physical_zone(options_.canonical_account, region, label);
}

}  // namespace cs::carto
