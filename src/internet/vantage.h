#pragma once

#include <string>
#include <vector>

#include "net/ipv4.h"
#include "util/geo.h"

/// Measurement vantage points — the PlanetLab stand-ins.
///
/// The paper used 80 geographically distributed PlanetLab nodes for
/// latency/throughput (§5.1), 150 for subdomain enumeration, 200 for
/// distributed DNS lookups, and 50 for name-server location. We provide a
/// deterministic catalogue of named nodes with real-city coordinates and
/// synthetic client addresses; callers take prefixes of the list.
namespace cs::internet {

struct VantagePoint {
  std::string name;       ///< "planetlab1.seattle.us"
  util::Location location;
  net::Ipv4 address;      ///< synthetic client address (non-cloud space)
  std::uint32_t asn = 0;  ///< the vantage's home AS
};

/// Returns the first `count` vantage points of the catalogue (max 200).
/// The catalogue is globally distributed with the paper's Figure 2 skew:
/// North America > Europe > Asia > South America/Oceania.
std::vector<VantagePoint> planetlab_vantages(std::size_t count);

/// The campus capture vantage (UW-Madison).
VantagePoint university_vantage();

/// A specific vantage by city substring (e.g. "boulder", "seattle");
/// throws std::invalid_argument if absent from the catalogue.
VantagePoint vantage_named(std::string_view city);

}  // namespace cs::internet
