#include "internet/model.h"

#include <cmath>
#include <numbers>

namespace cs::internet {
namespace {

/// Deterministic per-(key, bucket) uniform in [0, 1).
double hashed_uniform(std::uint64_t key, std::uint64_t bucket) {
  util::Rng rng{key ^ (bucket * 0x9e3779b97f4a7c15ULL)};
  return rng.uniform01();
}

std::uint64_t path_key_of(const VantagePoint& v, const cloud::Region& region,
                          std::uint64_t seed) {
  return seed ^ util::stable_hash(v.name) ^
         (util::stable_hash(region.name) * 1315423911ULL);
}

}  // namespace

WideAreaModel::WideAreaModel(Config config) : config_(config) {}

double WideAreaModel::base_rtt_ms(const VantagePoint& v,
                                  const cloud::Region& region) const {
  // Round trip over inflated fibre + last-mile/queueing constant, with a
  // stable per-path offset so equal-distance paths are not identical.
  const double propagation =
      2.0 * util::propagation_delay_ms(v.location.point,
                                       region.location.point);
  const double path_bias =
      6.0 * hashed_uniform(path_key_of(v, region, config_.seed), 0xB1A5);
  return 6.0 + propagation + path_bias;
}

double WideAreaModel::diurnal_factor(const VantagePoint& v,
                                     double t_sec) const {
  // Mild sinusoidal load keyed to the vantage's local time of day.
  const double local_hours =
      std::fmod(t_sec / 3600.0 + v.location.point.lon_deg / 15.0 + 48.0,
                24.0);
  return 1.0 + 0.05 * std::sin(2.0 * std::numbers::pi *
                               (local_hours - 15.0) / 24.0);
}

double WideAreaModel::congestion_factor(std::uint64_t path_key,
                                        double t_sec) const {
  const auto bucket = static_cast<std::uint64_t>(t_sec / 7200.0);
  const double draw = hashed_uniform(path_key, bucket);
  if (draw >= config_.congestion_probability) return 1.0;
  // Episode severity is itself stable within the bucket: 1.5x - 3x.
  return 1.5 + 1.5 * hashed_uniform(path_key * 31, bucket);
}

std::optional<double> WideAreaModel::rtt_sample(const VantagePoint& v,
                                                const cloud::Region& region,
                                                double t_sec) {
  const std::uint64_t key = path_key_of(v, region, config_.seed);
  util::Rng probe_rng{key ^ static_cast<std::uint64_t>(t_sec * 1000.0)};
  if (probe_rng.chance(config_.probe_loss)) return std::nullopt;
  const double base = base_rtt_ms(v, region) * diurnal_factor(v, t_sec) *
                      congestion_factor(key, t_sec);
  // Per-probe jitter: small lognormal tail, as queues produce.
  const double jitter = probe_rng.lognormal(0.0, 0.4) - 1.0;
  return base + std::max(-0.3 * base, 2.0 * jitter);
}

std::optional<double> WideAreaModel::throughput_sample(
    const VantagePoint& v, const cloud::Region& region, double t_sec) {
  const std::uint64_t key = path_key_of(v, region, config_.seed) * 7;
  util::Rng probe_rng{key ^ static_cast<std::uint64_t>(t_sec * 1000.0)};
  const auto rtt = rtt_sample(v, region, t_sec);
  if (!rtt) return std::nullopt;
  // Window-limited TCP with loss-episode degradation.
  const double rtt_sec = *rtt / 1000.0;
  double kbps = config_.tcp_window_bytes / rtt_sec / 1024.0;
  kbps = std::min(kbps, config_.access_cap_kbps);
  const double loss_draw =
      hashed_uniform(key * 13, static_cast<std::uint64_t>(t_sec / 7200.0));
  if (loss_draw < 0.1) kbps *= 0.3 + 0.4 * loss_draw / 0.1;  // lossy episode
  kbps *= 0.9 + 0.2 * probe_rng.uniform01();
  // The paper cancelled downloads over 10 s: 2 MB / 10 s = 204.8 KB/s floor.
  if (kbps < 2048.0 / 10.0) return std::nullopt;
  return kbps;
}

double WideAreaModel::zone_pair_base_ms(const std::string& region, int zone_a,
                                        int zone_b) const {
  if (zone_a == zone_b) {
    // Same zone: ~0.5 ms with a tiny stable per-zone offset.
    return 0.45 +
           0.1 * hashed_uniform(config_.seed ^ util::stable_hash(region),
                                static_cast<std::uint64_t>(zone_a));
  }
  const int lo = std::min(zone_a, zone_b);
  const int hi = std::max(zone_a, zone_b);
  const std::uint64_t pair_key = config_.seed ^
                                 util::stable_hash(region) * 97 ^
                                 (static_cast<std::uint64_t>(lo) << 8 | hi);
  // Some regions have physically close zone pairs whose RTT dips near the
  // same-zone band — the confusion source behind the paper's per-region
  // error-rate differences (eu-west hit 25%).
  const double overlap_prob =
      0.04 + 0.30 * hashed_uniform(config_.seed ^
                                       util::stable_hash(region) * 131,
                                   0x0E0E);
  if (hashed_uniform(pair_key * 7, 0x0F0F) < overlap_prob)
    return 0.92 + 0.25 * hashed_uniform(pair_key, 0x20E5);
  return 1.3 + 0.9 * hashed_uniform(pair_key, 0x20E5);
}

double WideAreaModel::instance_rtt_sample(const cloud::Provider& provider,
                                          const cloud::Instance& a,
                                          const cloud::Instance& b,
                                          double t_sec) {
  double base;
  if (a.region == b.region) {
    base = zone_pair_base_ms(a.region, a.zone, b.zone);
    // Stable path congestion between a probe zone and a target (loaded
    // hosts, hot switches): min-of-N probing cannot filter it, which is
    // what produces the paper's unknowns and mislabels. The prevalence
    // varies by region.
    const std::uint64_t path_key = config_.seed ^ (b.id * 131) ^
                                   (static_cast<std::uint64_t>(a.zone) *
                                    7919) ^
                                   util::stable_hash(a.region);
    const double congested_prob =
        0.04 + 0.24 * hashed_uniform(
                          config_.seed ^ util::stable_hash(a.region) * 53,
                          0xC0DE);
    if (hashed_uniform(path_key, 0x10AD) < congested_prob)
      base += 0.35 + 1.2 * hashed_uniform(path_key, 0xB1A5);
  } else {
    const auto* ra = provider.region(a.region);
    const auto* rb = provider.region(b.region);
    base = 2.0 * util::propagation_delay_ms(ra->location.point,
                                            rb->location.point) +
           2.0;
  }
  // Intra-cloud probes see occasional multi-ms noise spikes (shared
  // hosts/switches); min-of-N probing suppresses them.
  util::Rng probe_rng{config_.seed ^ (a.id * 0x9E37ULL) ^ (b.id * 0x79B9ULL) ^
                      static_cast<std::uint64_t>(t_sec * 1e3)};
  double noise = probe_rng.exponential(20.0);  // mean 0.05 ms
  if (probe_rng.chance(0.08)) noise += probe_rng.uniform(0.5, 4.0);  // spike
  return base + noise;
}

bool WideAreaModel::instance_unresponsive(const cloud::Instance& target)
    const {
  // A stable ~22% of instances never answer probes (firewalled), in line
  // with Table 12's responded/total ratios.
  return hashed_uniform(config_.seed ^ 0xF12EBA11ULL, target.id) < 0.22;
}

}  // namespace cs::internet
