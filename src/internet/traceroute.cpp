#include "internet/traceroute.h"

#include <cmath>
#include <stdexcept>

#include "util/format.h"

namespace cs::internet {
namespace {

/// Region pool sizes shaped after Table 16 (per-zone counts there are the
/// pool minus an occasional missing ISP).
int pool_size_for(const std::string& region) {
  if (region == "ec2.us-east-1") return 37;
  if (region == "ec2.us-west-1") return 19;
  if (region == "ec2.us-west-2") return 19;
  if (region == "ec2.eu-west-1") return 12;
  if (region == "ec2.ap-northeast-1") return 9;
  if (region == "ec2.ap-southeast-1") return 12;
  if (region == "ec2.ap-southeast-2") return 4;
  if (region == "ec2.sa-east-1") return 4;
  return 8;  // Azure and anything else: moderate multihoming
}

}  // namespace

AsTopology::AsTopology(const cloud::Provider& provider, std::uint64_t seed)
    : seed_(seed) {
  std::uint32_t next_asn = 7000;
  int next_block = 0;
  util::Rng rng{seed ^ 0xA5A5ULL};
  for (const auto& region : provider.regions()) {
    RegionPlan plan;
    const int pool = pool_size_for(region.name);
    for (int i = 0; i < pool; ++i) {
      AsInfo as;
      as.asn = next_asn++;
      as.name = util::fmt("isp-{}-{}", region.name, i);
      // Carrier space from 100.64.0.0/10 (never overlaps cloud ranges).
      as.block = net::Cidr{
          net::Ipv4{static_cast<std::uint32_t>((100u << 24) |
                                               ((64 + next_block / 256) << 16) |
                                               ((next_block % 256) << 8))},
          24};
      ++next_block;
      whois_.insert(as.block, as.asn);
      plan.pool.push_back(std::move(as));
      // Zipf-ish weights: top ISP carries ~1/3 of routes in big regions.
      plan.weights.push_back(1.0 / std::pow(i + 1.5, 0.85));
    }
    plan.zone_missing.resize(region.zone_count);
    for (int z = 0; z < region.zone_count; ++z) {
      // A zone occasionally lacks one or two of the region's ISPs.
      if (pool > 4 && rng.chance(0.5))
        plan.zone_missing[z].insert(
            static_cast<int>(rng.next_below(pool)));
      if (pool > 10 && rng.chance(0.3))
        plan.zone_missing[z].insert(
            static_cast<int>(rng.next_below(pool)));
    }
    plans_[region.name] = std::move(plan);
  }
}

const AsTopology::RegionPlan& AsTopology::plan_of(
    const std::string& region) const {
  const auto it = plans_.find(region);
  if (it == plans_.end())
    throw std::invalid_argument{"AsTopology: unknown region " + region};
  return it->second;
}

const std::vector<AsInfo>& AsTopology::region_pool(
    const std::string& region) const {
  return plan_of(region).pool;
}

std::vector<AsInfo> AsTopology::downstream_of(const std::string& region,
                                              int zone) const {
  const auto& plan = plan_of(region);
  std::vector<AsInfo> out;
  const auto& missing =
      plan.zone_missing.at(static_cast<std::size_t>(zone));
  for (std::size_t i = 0; i < plan.pool.size(); ++i)
    if (!missing.contains(static_cast<int>(i))) out.push_back(plan.pool[i]);
  return out;
}

std::optional<AsInfo> AsTopology::downstream_for_path(
    const std::string& region, int zone, const VantagePoint& to) const {
  const auto& plan = plan_of(region);
  const auto& missing = plan.zone_missing.at(static_cast<std::size_t>(zone));
  // Stable weighted choice per (region, zone, vantage).
  util::Rng rng{seed_ ^ util::stable_hash(region) * 3 ^
                util::stable_hash(to.name) ^
                (static_cast<std::uint64_t>(zone) << 40)};
  std::vector<double> weights = plan.weights;
  for (const int i : missing) weights[static_cast<std::size_t>(i)] = 0.0;
  const std::size_t pick = rng.weighted_pick(weights);
  const auto& as = plan.pool[pick];
  if (down_.contains(as.asn)) return std::nullopt;
  return as;
}

std::vector<Hop> AsTopology::traceroute(const cloud::Instance& from,
                                        const VantagePoint& to) const {
  const auto downstream = downstream_for_path(from.region, from.zone, to);
  if (!downstream) return {};  // path blackholed

  util::Rng rng{seed_ ^ from.id * 7 ^ util::stable_hash(to.name)};
  std::vector<Hop> hops;
  // Cloud-internal hops: the instance's gateway then a border router, both
  // in internal space (whois yields nothing for them, ASN 0).
  hops.push_back({net::Ipv4{10, from.internal_ip.octet(1), 0, 1}, 0});
  hops.push_back({net::Ipv4{10, from.internal_ip.octet(1), 0, 254}, 0});
  // First non-cloud hop: the downstream ISP's border (what the paper
  // whois'ed to count ISPs).
  hops.push_back({downstream->block.at(1 + rng.next_below(200)),
                  downstream->asn});
  // Transit hops in unallocated-to-us space mapped to synthetic transit ASes.
  const int transit = 2 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < transit; ++i) {
    hops.push_back({net::Ipv4{192, 175,
                              static_cast<std::uint8_t>(rng.next_below(250)),
                              static_cast<std::uint8_t>(1 +
                                                        rng.next_below(250))},
                    0});
  }
  hops.push_back({to.address, to.asn});
  return hops;
}

std::optional<std::uint32_t> AsTopology::asn_of(net::Ipv4 addr) const {
  return whois_.lookup(addr);
}

void AsTopology::set_as_down(std::uint32_t asn, bool down) {
  if (down)
    down_.insert(asn);
  else
    down_.erase(asn);
}

}  // namespace cs::internet
