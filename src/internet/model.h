#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "internet/vantage.h"
#include "util/rng.h"

/// Wide-area and intra-cloud network model.
///
/// Produces the measurements the paper gathered with hping3/HTTP GETs:
///  - client-to-region RTT: geographic propagation (inflated fibre path)
///    plus last-mile constants, diurnal load, per-path congestion episodes,
///    and per-probe jitter. Episodes are what make "the best region for a
///    client" change over time (Figure 11).
///  - client-to-region TCP throughput: window/RTT-limited with an access
///    cap and loss episodes (Figure 9/12b).
///  - intra-cloud instance-to-instance RTT: ~0.5 ms same-zone, a stable
///    per-zone-pair value in [1.2, 2.2] ms cross-zone (Table 11) and
///    geographic RTT cross-region. This is the signal the latency-based
///    cartography thresholds on.
/// All values are deterministic functions of (seed, path, time).
namespace cs::internet {

class WideAreaModel {
 public:
  struct Config {
    std::uint64_t seed = 1;
    double congestion_probability = 0.15;  ///< per 2-hour path-bucket
    double probe_loss = 0.01;              ///< chance a single ping is lost
    double tcp_window_bytes = 128 * 1024;  ///< throughput = wnd / RTT
    double access_cap_kbps = 12000.0;      ///< last-mile ceiling
  };

  explicit WideAreaModel(Config config);

  /// One TCP-ping RTT sample (ms) from a vantage to a region front end at
  /// absolute time `t_sec`; nullopt models a lost probe.
  std::optional<double> rtt_sample(const VantagePoint& v,
                                   const cloud::Region& region, double t_sec);

  /// The deterministic base RTT (no jitter/episodes) — handy for tests.
  double base_rtt_ms(const VantagePoint& v, const cloud::Region& region) const;

  /// One 2 MB-file HTTP download throughput sample in KB/s (Figure 9's
  /// methodology); nullopt when the (10 s) download deadline is exceeded.
  std::optional<double> throughput_sample(const VantagePoint& v,
                                          const cloud::Region& region,
                                          double t_sec);

  /// Intra-cloud RTT sample between two instances of one provider (ms).
  double instance_rtt_sample(const cloud::Provider& provider,
                             const cloud::Instance& a,
                             const cloud::Instance& b, double t_sec);

  /// Whether a single probe to an instance goes unanswered entirely (some
  /// targets never respond — Table 12's "responded" column).
  bool instance_unresponsive(const cloud::Instance& target) const;

  /// Stable per-zone-pair base RTT in a region (ground truth used by
  /// instance_rtt_sample; exposed for tests and Table 11).
  double zone_pair_base_ms(const std::string& region, int zone_a,
                           int zone_b) const;

 private:
  /// Congestion multiplier for a path at a time (1.0 when clear).
  double congestion_factor(std::uint64_t path_key, double t_sec) const;
  double diurnal_factor(const VantagePoint& v, double t_sec) const;

  Config config_;
};

}  // namespace cs::internet
