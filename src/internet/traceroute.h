#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "internet/vantage.h"
#include "net/prefix_set.h"
#include "util/rng.h"

/// AS-level topology and traceroute simulation for the §5.2 ISP-diversity
/// study. Each cloud region is multihomed to a pool of downstream ISPs
/// (ASes) with an uneven route spread: the paper found up to ~33% of a
/// region's routes exiting through a single ISP, and region pool sizes
/// ranging from 36 (US East) down to 4 (Sydney, São Paulo).
namespace cs::internet {

struct AsInfo {
  std::uint32_t asn = 0;
  std::string name;
  net::Cidr block;  ///< address space whose whois resolves to this AS
};

struct Hop {
  net::Ipv4 address;
  std::uint32_t asn = 0;  ///< 0 for unmapped/cloud-internal hops
};

class AsTopology {
 public:
  /// Builds the downstream plan for a provider's regions. Pool sizes are
  /// drawn per region to match Table 16's shape (well-multihomed US/EU,
  /// poorly multihomed Sydney/São Paulo).
  AsTopology(const cloud::Provider& provider, std::uint64_t seed);

  /// Downstream ISPs available to a zone of a region. Zones of a region
  /// see almost the same set (a zone may miss one ISP of the pool).
  std::vector<AsInfo> downstream_of(const std::string& region,
                                    int zone) const;

  /// The downstream AS a route from (region, zone) to a vantage uses.
  /// Stable per path; weighted by the region's uneven spread. Returns
  /// nullopt when the selected AS is failed and the path has no refuge
  /// (routes do not re-home in this model — that is the vulnerability the
  /// paper points at).
  std::optional<AsInfo> downstream_for_path(const std::string& region,
                                            int zone,
                                            const VantagePoint& to) const;

  /// Simulates `traceroute` from an instance to a vantage. Cloud-internal
  /// hops come first (ASN 0), then the downstream ISP's border (the hop
  /// the paper ran whois on), transit, and the vantage. Empty when the
  /// path's downstream AS is failed.
  std::vector<Hop> traceroute(const cloud::Instance& from,
                              const VantagePoint& to) const;

  /// whois: longest-prefix ASN lookup.
  std::optional<std::uint32_t> asn_of(net::Ipv4 addr) const;

  /// Fails/restores a downstream AS (for availability experiments).
  void set_as_down(std::uint32_t asn, bool down);
  bool is_down(std::uint32_t asn) const { return down_.contains(asn); }

  /// Full regional pool (union over zones).
  const std::vector<AsInfo>& region_pool(const std::string& region) const;

 private:
  struct RegionPlan {
    std::vector<AsInfo> pool;
    std::vector<double> weights;          ///< uneven route spread
    std::vector<std::set<int>> zone_missing;  ///< pool indices absent per zone
  };

  const RegionPlan& plan_of(const std::string& region) const;

  std::uint64_t seed_;
  std::map<std::string, RegionPlan> plans_;
  net::PrefixMap<std::uint32_t> whois_;
  std::set<std::uint32_t> down_;
};

}  // namespace cs::internet
