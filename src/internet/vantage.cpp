#include "internet/vantage.h"

#include <stdexcept>

#include "util/strings.h"

namespace cs::internet {
namespace {

struct City {
  const char* name;
  double lat, lon;
  const char* country;
  const char* continent;
};

/// 50 distinct cities; the catalogue cycles through them with per-site
/// suffixes to reach 200 nodes, preserving the Figure 2 geographic skew.
constexpr City kCities[] = {
    // North America (heaviest presence, like PlanetLab).
    {"seattle", 47.61, -122.33, "US", "NA"},
    {"berkeley", 37.87, -122.27, "US", "NA"},
    {"losangeles", 34.05, -118.24, "US", "NA"},
    {"boulder", 40.01, -105.27, "US", "NA"},
    {"saltlake", 40.76, -111.89, "US", "NA"},
    {"houston", 29.76, -95.37, "US", "NA"},
    {"chicago", 41.88, -87.63, "US", "NA"},
    {"madison", 43.07, -89.40, "US", "NA"},
    {"atlanta", 33.75, -84.39, "US", "NA"},
    {"miami", 25.76, -80.19, "US", "NA"},
    {"boston", 42.36, -71.06, "US", "NA"},
    {"newyork", 40.71, -74.01, "US", "NA"},
    {"princeton", 40.34, -74.66, "US", "NA"},
    {"washington", 38.91, -77.04, "US", "NA"},
    {"toronto", 43.65, -79.38, "CA", "NA"},
    {"vancouver", 49.28, -123.12, "CA", "NA"},
    {"montreal", 45.50, -73.57, "CA", "NA"},
    {"mexicocity", 19.43, -99.13, "MX", "NA"},
    // Europe.
    {"london", 51.51, -0.13, "GB", "EU"},
    {"cambridge", 52.21, 0.12, "GB", "EU"},
    {"paris", 48.86, 2.35, "FR", "EU"},
    {"madrid", 40.42, -3.70, "ES", "EU"},
    {"lisbon", 38.72, -9.14, "PT", "EU"},
    {"zurich", 47.38, 8.54, "CH", "EU"},
    {"berlin", 52.52, 13.40, "DE", "EU"},
    {"munich", 48.14, 11.58, "DE", "EU"},
    {"amsterdam", 52.37, 4.90, "NL", "EU"},
    {"brussels", 50.85, 4.35, "BE", "EU"},
    {"stockholm", 59.33, 18.07, "SE", "EU"},
    {"helsinki", 60.17, 24.94, "FI", "EU"},
    {"warsaw", 52.23, 21.01, "PL", "EU"},
    {"prague", 50.08, 14.44, "CZ", "EU"},
    {"rome", 41.90, 12.50, "IT", "EU"},
    {"athens", 37.98, 23.73, "GR", "EU"},
    {"dublin", 53.33, -6.25, "IE", "EU"},
    // Asia.
    {"tokyo", 35.68, 139.69, "JP", "AS"},
    {"osaka", 34.69, 135.50, "JP", "AS"},
    {"seoul", 37.57, 126.98, "KR", "AS"},
    {"beijing", 39.90, 116.41, "CN", "AS"},
    {"shanghai", 31.23, 121.47, "CN", "AS"},
    {"hongkong", 22.32, 114.17, "HK", "AS"},
    {"taipei", 25.03, 121.57, "TW", "AS"},
    {"singapore", 1.35, 103.82, "SG", "AS"},
    {"bangalore", 12.97, 77.59, "IN", "AS"},
    {"delhi", 28.61, 77.21, "IN", "AS"},
    // South America + Oceania.
    {"saopaulo", -23.55, -46.63, "BR", "SA"},
    {"santiago", -33.45, -70.67, "CL", "SA"},
    {"buenosaires", -34.60, -58.38, "AR", "SA"},
    {"sydney", -33.87, 151.21, "AU", "OC"},
    {"auckland", -36.85, 174.76, "NZ", "OC"},
  };

constexpr std::size_t kCityCount = std::size(kCities);
constexpr std::size_t kMaxVantages = 200;

VantagePoint make_vantage(std::size_t index) {
  const City& city = kCities[index % kCityCount];
  const std::size_t site = index / kCityCount + 1;
  VantagePoint v;
  v.name = "planetlab" + std::to_string(site) + "." + city.name;
  v.location = {{city.lat, city.lon}, city.country, city.continent};
  // Client addresses in 199.x space (outside every cloud range we publish).
  v.address = net::Ipv4{199, static_cast<std::uint8_t>(16 + index / 250),
                        static_cast<std::uint8_t>(index % 250), 10};
  // Each city sits in its own access AS; sites share the city AS.
  v.asn = static_cast<std::uint32_t>(64500 + index % kCityCount);
  return v;
}

}  // namespace

std::vector<VantagePoint> planetlab_vantages(std::size_t count) {
  count = std::min(count, kMaxVantages);
  std::vector<VantagePoint> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(make_vantage(i));
  return out;
}

VantagePoint university_vantage() {
  VantagePoint v;
  v.name = "border.wisc.edu";
  v.location = {{43.07, -89.40}, "US", "NA"};
  v.address = net::Ipv4{198, 51, 100, 1};
  v.asn = 59;  // UW-Madison's real ASN, a nice touch for log realism
  return v;
}

VantagePoint vantage_named(std::string_view city) {
  for (std::size_t i = 0; i < kCityCount; ++i) {
    if (util::icontains(kCities[i].name, city)) return make_vantage(i);
  }
  throw std::invalid_argument{"vantage_named: unknown city " +
                              std::string{city}};
}

}  // namespace cs::internet
