#include "util/table.h"

#include <algorithm>
#include <stdexcept>

namespace cs::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument{"Table: no headers"};
}

Table& Table::caption(std::string text) {
  caption_ = std::move(text);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size())
    throw std::invalid_argument{"Table::row: more cells than headers"};
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells, std::string& out) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out += "  ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
    }
    // Trim trailing padding for clean diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::string out;
  if (!caption_.empty()) out += caption_ + "\n";
  emit_row(headers_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += widths[c] + (c ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& r : rows_) emit_row(r, out);
  return out;
}

}  // namespace cs::util
