#pragma once

#include <string>
#include <string_view>
#include <vector>

/// String helpers used across parsing and report code. All are
/// allocation-conscious: views in, owned strings out only where needed.
namespace cs::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Splits and drops empty fields (useful for whitespace-ish tokenizing).
std::vector<std::string_view> split_nonempty(std::string_view text, char sep);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// ASCII lower-case copy (DNS names and HTTP header names are
/// case-insensitive by spec; full Unicode is out of scope).
std::string to_lower(std::string_view text);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if text starts with / ends with the given piece (ASCII
/// case-insensitive variants included; DNS suffix checks need them).
bool iequals(std::string_view a, std::string_view b) noexcept;
bool istarts_with(std::string_view text, std::string_view prefix) noexcept;
bool iends_with(std::string_view text, std::string_view suffix) noexcept;
bool icontains(std::string_view text, std::string_view needle) noexcept;

/// Formats a byte count with binary units ("1.4 GB"-style, as the paper
/// reports traffic volumes).
std::string human_bytes(double bytes);

}  // namespace cs::util
