#pragma once

#include <string>

/// Geographic primitives for the wide-area latency model.
namespace cs::util {

/// A point on the Earth's surface, degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// One-way propagation delay in milliseconds for a fibre path between two
/// points: distance / (2/3 c) with a route-inflation factor to account for
/// non-geodesic physical paths (defaults to the commonly measured ~1.5x).
double propagation_delay_ms(const GeoPoint& a, const GeoPoint& b,
                            double route_inflation = 1.5) noexcept;

/// ISO-3166-ish country tag used by the customer-country analysis.
struct Location {
  GeoPoint point;
  std::string country;    ///< e.g. "US"
  std::string continent;  ///< e.g. "NA"
};

}  // namespace cs::util
