#include "util/env.h"

#include <cstdlib>

namespace cs::util {
namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if ((a[i] | 0x20) != (b[i] | 0x20)) return false;
  return true;
}

}  // namespace

std::optional<std::string> env_text(const char* name) {
  const char* value = std::getenv(name);
  if (!value || !*value) return std::nullopt;
  return std::string{value};
}

std::string env_malformed(std::string_view name, std::string_view value,
                          std::string_view expected) {
  std::string out = "ignoring ";
  out += name;
  out += "='";
  out += value;
  out += "' (want ";
  out += expected;
  out += ")";
  return out;
}

std::optional<bool> parse_env_flag(std::string_view text) noexcept {
  for (const auto* on : {"1", "true", "on", "yes"})
    if (iequals(text, on)) return true;
  for (const auto* off : {"0", "false", "off", "no"})
    if (iequals(text, off)) return false;
  return std::nullopt;
}

std::optional<unsigned> parse_env_unsigned(std::string_view text) noexcept {
  if (text.empty() || text.size() > 9) return std::nullopt;
  unsigned value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  return value;
}

}  // namespace cs::util
