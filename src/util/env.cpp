#include "util/env.h"

#include <cstdlib>

namespace cs::util {
namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if ((a[i] | 0x20) != (b[i] | 0x20)) return false;
  return true;
}

constexpr KnobInfo kRegistry[] = {
#define CS_KNOB(id, name, kind, fallback, doc) \
  {Knob::id, name, #kind, fallback, doc},
#include "util/knobs.def"
#undef CS_KNOB
};

}  // namespace

std::span<const KnobInfo> knob_registry() noexcept { return kRegistry; }

const KnobInfo& knob_info(Knob knob) noexcept {
  return kRegistry[static_cast<std::size_t>(knob)];
}

std::optional<std::string> env_text(const char* name) {
  const char* value = std::getenv(name);
  if (!value || !*value) return std::nullopt;
  return std::string{value};
}

std::optional<std::string> env_text(Knob knob) {
  return env_text(knob_info(knob).name);
}

std::string env_malformed(std::string_view name, std::string_view value,
                          std::string_view expected) {
  std::string out = "ignoring ";
  out += name;
  out += "='";
  out += value;
  out += "' (want ";
  out += expected;
  out += ")";
  return out;
}

std::string env_malformed(Knob knob, std::string_view value,
                          std::string_view expected) {
  return env_malformed(knob_info(knob).name, value, expected);
}

std::optional<bool> parse_env_flag(std::string_view text) noexcept {
  for (const auto* on : {"1", "true", "on", "yes"})
    if (iequals(text, on)) return true;
  for (const auto* off : {"0", "false", "off", "no"})
    if (iequals(text, off)) return false;
  return std::nullopt;
}

std::optional<unsigned> parse_env_unsigned(std::string_view text) noexcept {
  if (text.empty() || text.size() > 9) return std::nullopt;
  unsigned value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  return value;
}

}  // namespace cs::util
