#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string_view>

namespace cs::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument{"Rng::next_below: bound == 0"};
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % bound;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument{"Rng::uniform_int: lo > hi"};
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double z0 = mag * std::cos(2.0 * std::numbers::pi * u2);
  spare_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_spare_normal_ = true;
  return mean + stddev * z0;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument{"Rng::exponential: rate <= 0"};
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0)
    throw std::invalid_argument{"Rng::pareto: xm and alpha must be > 0"};
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument{"Rng::zipf: n == 0"};
  if (n == 1) return 1;
  // Rejection-inversion sampling (Hormann & Derflinger) specialised for the
  // classic Zipf pmf ~ 1/k^s. Works for s close to or greater than 1.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    if (s == 1.0) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hn = h(nd + 0.5);
  for (;;) {
    const double u = hx0 + uniform01() * (hn - hx0);
    const double x = h_inv(u);
    const double k = std::floor(x + 0.5);
    if (k < 1.0 || k > nd) continue;
    // Acceptance test against the true pmf.
    if (u >= h(k + 0.5) - std::pow(k, -s)) continue;
    return static_cast<std::uint64_t>(k);
  }
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument{"Rng::weighted_pick: negative weight"};
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument{"Rng::weighted_pick: zero total weight"};
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric slack lands on the last bucket
}

Rng Rng::fork() {
  return Rng{(*this)() ^ 0xd1b54a32d192ed03ULL};
}

std::uint64_t stable_hash(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace cs::util
