#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

/// Empirical cumulative distribution functions.
///
/// The paper reports many results as CDFs (Figures 3–8). Cdf collects raw
/// samples and renders either exact step points or a down-sampled series
/// suitable for printing in bench output.
namespace cs::util {

class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::span<const double> samples);

  /// Adds one sample. O(1); the data is sorted lazily on first query.
  void add(double x);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x, in [0,1]. Returns 0 on an empty CDF.
  double at(double x) const;

  /// Inverse CDF: smallest sample value v with fraction(v) >= q.
  double value_at(double q) const;

  /// The raw samples in sorted order — the canonical serialized form (the
  /// snapshot codec round-trips a Cdf through this view; every query
  /// below is a pure function of it).
  std::span<const double> sorted_samples() const;

  /// Exact step points (value, cumulative fraction), deduplicated by value.
  struct Point {
    double value;
    double fraction;
  };
  std::vector<Point> points() const;

  /// At most max_points points, evenly spaced in quantile space — what the
  /// bench harnesses print so the series stays readable.
  std::vector<Point> sampled_points(std::size_t max_points) const;

  /// Renders "value<TAB>fraction" lines, one per sampled point, with an
  /// optional header comment naming the series.
  std::string to_tsv(std::size_t max_points = 32,
                     std::string_view name = {}) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Renders several CDFs side by side at shared quantiles; used by Figure
/// benches that overlay EC2 and Azure series.
std::string render_cdf_comparison(
    std::span<const std::pair<std::string, const Cdf*>> series,
    std::size_t points = 20);

}  // namespace cs::util
