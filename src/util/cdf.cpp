#include "util/cdf.h"

#include <algorithm>
#include <cstdio>
#include "util/format.h"

namespace cs::util {

Cdf::Cdf(std::span<const double> samples)
    : samples_(samples.begin(), samples.end()), sorted_(false) {}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::value_at(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t idx = std::min(
      samples_.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(samples_.size())));
  return samples_[idx];
}

std::span<const double> Cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

std::vector<Cdf::Point> Cdf::points() const {
  ensure_sorted();
  std::vector<Point> pts;
  const double n = static_cast<double>(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    // Emit one point per distinct value, carrying the highest fraction.
    if (i + 1 < samples_.size() && samples_[i + 1] == samples_[i]) continue;
    pts.push_back({samples_[i], static_cast<double>(i + 1) / n});
  }
  return pts;
}

std::vector<Cdf::Point> Cdf::sampled_points(std::size_t max_points) const {
  auto pts = points();
  if (pts.size() <= max_points || max_points == 0) return pts;
  std::vector<Point> out;
  out.reserve(max_points);
  for (std::size_t i = 0; i < max_points; ++i) {
    const std::size_t idx =
        i * (pts.size() - 1) / (max_points - 1 ? max_points - 1 : 1);
    out.push_back(pts[idx]);
  }
  return out;
}

std::string Cdf::to_tsv(std::size_t max_points, std::string_view name) const {
  std::string out;
  if (!name.empty()) out += cs::util::fmt("# {} (n={})\n", name, samples_.size());
  for (const auto& p : sampled_points(max_points))
    out += cs::util::fmt("{:.4g}\t{:.4f}\n", p.value, p.fraction);
  return out;
}

std::string render_cdf_comparison(
    std::span<const std::pair<std::string, const Cdf*>> series,
    std::size_t points) {
  std::string out = "quantile";
  for (const auto& [name, cdf] : series) {
    (void)cdf;
    out += "\t" + name;
  }
  out += "\n";
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out += cs::util::fmt("{:.2f}", q);
    for (const auto& [name, cdf] : series) {
      (void)name;
      out += cs::util::fmt("\t{:.4g}", cdf->value_at(q));
    }
    out += "\n";
  }
  return out;
}

}  // namespace cs::util
