#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

/// Annotated synchronization primitives.
///
/// Every mutex in src/ is a cs::util::Mutex so Clang's thread-safety
/// analysis (-Werror=thread-safety in the `thread-safety` CI job) can
/// prove lock discipline at compile time: data members declare their
/// lock with CS_GUARDED_BY, functions that expect the lock held declare
/// CS_REQUIRES, and a forgotten LockGuard is a build error, not a TSan
/// flake. The wrappers are zero-cost shims over the std primitives.
///
/// CondVar deliberately has no predicate-taking wait: a predicate lambda
/// is a separate function to the analysis, so guarded reads inside it
/// would need their own annotations. Call sites spell the loop out
///
///   while (!condition) cv.wait(mutex);
///
/// which keeps the guarded reads in the scope that provably holds the
/// lock.
namespace cs::util {

class CS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CS_ACQUIRE() { m_.lock(); }
  void unlock() CS_RELEASE() { m_.unlock(); }
  bool try_lock() CS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock over a Mutex; the std::lock_guard of this codebase.
class CS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) CS_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() CS_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable bound to Mutex. wait() atomically releases and
/// reacquires the caller's lock, exactly like std::condition_variable;
/// the CS_REQUIRES annotation makes "wait without the lock" a compile
/// error under Clang.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& m) CS_REQUIRES(m) {
    std::unique_lock<std::mutex> adopted{m.m_, std::adopt_lock};
    cv_.wait(adopted);
    adopted.release();
  }

  /// Returns std::cv_status::timeout when `deadline` passed before a
  /// notification (spurious wakeups report no_timeout, as with std).
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& m, const std::chrono::time_point<Clock, Duration>& deadline)
      CS_REQUIRES(m) {
    std::unique_lock<std::mutex> adopted{m.m_, std::adopt_lock};
    const auto status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace cs::util
