#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

/// One strict home for the process's CS_* environment knobs. Every
/// subsystem used to hand-roll its own getenv parsing with slightly
/// different laxness (CS_METRICS accepted "true", CS_LOG_LEVEL silently
/// swallowed typos); this helper gives them one set of rules and one
/// malformed-value message, so a misspelt knob always warns the same way
/// instead of silently changing behaviour.
///
/// Knob *names* live in one place too: src/util/knobs.def is an X-macro
/// registry of every CS_* knob, expanded here into the Knob enum and its
/// metadata. In-tree readers name knobs by enum (`env_text(Knob::kTrace)`)
/// so a typo'd knob is a compile error, and cslint's K1 check holds the
/// registry, the code, and the README's knob table to the same list.
///
/// util cannot depend on obs, so nothing here logs: parsers return
/// nullopt and `env_malformed` renders the uniform warning text for the
/// caller to emit through its own component logger.
namespace cs::util {

/// Every registered CS_* knob, generated from src/util/knobs.def.
enum class Knob {
#define CS_KNOB(id, name, kind, fallback, doc) id,
#include "util/knobs.def"
#undef CS_KNOB
};

/// Registry metadata for one knob (all strings are static literals).
struct KnobInfo {
  Knob knob;
  const char* name;      ///< the environment variable, "CS_*"
  const char* kind;      ///< flag|unsigned|text|path|enumerated|spec|build
  const char* fallback;  ///< human-readable default when unset
  const char* doc;       ///< one-line summary
};

/// Every registered knob, in knobs.def order.
std::span<const KnobInfo> knob_registry() noexcept;

/// Metadata for one knob.
const KnobInfo& knob_info(Knob knob) noexcept;

/// The variable's value, or nullopt when unset or empty (the two are
/// deliberately equivalent: `CS_TRACE= cmd` disables like unsetting does).
std::optional<std::string> env_text(const char* name);

/// Registry-keyed read: the preferred spelling for in-tree callers.
std::optional<std::string> env_text(Knob knob);

/// The uniform warning for a malformed value:
/// `ignoring NAME='value' (want EXPECTED)`.
std::string env_malformed(std::string_view name, std::string_view value,
                          std::string_view expected);

/// Registry-keyed form of the malformed-value warning.
std::string env_malformed(Knob knob, std::string_view value,
                          std::string_view expected);

/// Strict boolean: 1/true/on/yes or 0/false/off/no, case-insensitive.
std::optional<bool> parse_env_flag(std::string_view text) noexcept;

/// Strict unsigned decimal, at most 9 digits (no sign, no whitespace).
std::optional<unsigned> parse_env_unsigned(std::string_view text) noexcept;

}  // namespace cs::util
