#pragma once

#include <optional>
#include <string>
#include <string_view>

/// One strict home for the process's CS_* environment knobs. Every
/// subsystem used to hand-roll its own getenv parsing with slightly
/// different laxness (CS_METRICS accepted "true", CS_LOG_LEVEL silently
/// swallowed typos); this helper gives them one set of rules and one
/// malformed-value message, so a misspelt knob always warns the same way
/// instead of silently changing behaviour.
///
/// util cannot depend on obs, so nothing here logs: parsers return
/// nullopt and `env_malformed` renders the uniform warning text for the
/// caller to emit through its own component logger.
namespace cs::util {

/// The variable's value, or nullopt when unset or empty (the two are
/// deliberately equivalent: `CS_TRACE= cmd` disables like unsetting does).
std::optional<std::string> env_text(const char* name);

/// The uniform warning for a malformed value:
/// `ignoring NAME='value' (want EXPECTED)`.
std::string env_malformed(std::string_view name, std::string_view value,
                          std::string_view expected);

/// Strict boolean: 1/true/on/yes or 0/false/off/no, case-insensitive.
std::optional<bool> parse_env_flag(std::string_view text) noexcept;

/// Strict unsigned decimal, at most 9 digits (no sign, no whitespace).
std::optional<unsigned> parse_env_unsigned(std::string_view text) noexcept;

}  // namespace cs::util
