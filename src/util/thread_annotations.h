#pragma once

// Clang thread-safety analysis attributes behind CS_* macros.
//
// The wrappers in util/sync.h attach these to cs::util::Mutex and
// cs::util::LockGuard; data members guarded by a mutex declare it with
// CS_GUARDED_BY, and functions that expect the caller to hold a lock
// declare CS_REQUIRES. Under Clang the `thread-safety` CI job compiles
// src/ with -Werror=thread-safety so lock-discipline regressions fail
// the build; under GCC the macros expand to nothing and cost nothing.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#define CS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CS_THREAD_ANNOTATION_(x)
#endif

// Type attribute: marks a class as a lockable capability ("mutex").
#define CS_CAPABILITY(name) CS_THREAD_ANNOTATION_(capability(name))

// Marks a RAII class whose constructor acquires and destructor releases.
#define CS_SCOPED_CAPABILITY CS_THREAD_ANNOTATION_(scoped_lockable)

// Data-member attribute: reads/writes require holding `mu`.
#define CS_GUARDED_BY(mu) CS_THREAD_ANNOTATION_(guarded_by(mu))

// Pointer-member attribute: the pointed-to data requires holding `mu`.
#define CS_PT_GUARDED_BY(mu) CS_THREAD_ANNOTATION_(pt_guarded_by(mu))

// Function attributes: caller must hold / must not hold the capability.
#define CS_REQUIRES(...) \
  CS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define CS_EXCLUDES(...) CS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Function attributes: the call acquires / releases the capability.
#define CS_ACQUIRE(...) CS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CS_RELEASE(...) CS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CS_TRY_ACQUIRE(...) \
  CS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Function attribute: the return value is guarded by the capability.
#define CS_RETURN_CAPABILITY(x) CS_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for code the analysis cannot model (document why at use).
#define CS_NO_THREAD_SAFETY_ANALYSIS \
  CS_THREAD_ANNOTATION_(no_thread_safety_analysis)
