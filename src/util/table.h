#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

/// Fixed-width text table renderer.
///
/// Every bench harness prints its reproduction of a paper table through this
/// class so output is uniform and easy to diff against EXPERIMENTS.md.
namespace cs::util {

class Table {
 public:
  /// Creates a table with the given column headers.
  /// (Deliberately only the vector overload: an initializer_list of
  /// string_view invites the C++20 iterator-pair string_view constructor
  /// to misinterpret `{{"a","b"}}` as one view spanning two literals.)
  explicit Table(std::vector<std::string> headers);

  /// Optional caption printed above the table ("Table 3: ...").
  Table& caption(std::string text);

  /// Appends a row; missing cells render empty, extra cells are an error.
  Table& row(std::vector<std::string> cells);

  /// Convenience: formats each argument with std::format("{}").
  template <typename... Ts>
  Table& add(const Ts&... cells) {
    return row({format_cell(cells)...});
  }

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header rule and right-padded columns.
  std::string render() const;

 private:
  template <typename T>
  static std::string format_cell(const T& v);

  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cs::util

#include "util/format.h"

template <typename T>
std::string cs::util::Table::format_cell(const T& v) {
  if constexpr (std::is_floating_point_v<T>)
    return fmt("{:.2f}", v);
  else
    return fmt("{}", v);
}
