#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// Minimal read-only JSON parser for the repo's own machine-readable
/// artifacts: bench sidecars (CS_BENCH_JSON), BENCH_* perf-trajectory
/// manifests, and cslint --json reports. It exists so readers stop
/// substring-scanning for `"key": ` patterns — `bench_common.h` used to
/// pull `wall_ms` out of a previous sidecar with `text.find`, which
/// silently returned 0.0 whenever the writer's spacing drifted.
///
/// Scope is deliberately small: UTF-8 pass-through (no \uXXXX surrogate
/// pairing — our writers never emit it), numbers via strtod, a recursion
/// depth cap instead of a streaming API. Parsing never throws; malformed
/// input yields nullopt.
namespace cs::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  // kObject, in order

  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }

  /// Member of an object by key; nullptr when absent or not an object.
  /// Duplicate keys resolve to the first occurrence.
  const JsonValue* find(std::string_view key) const noexcept;

  /// `find` chained through nested objects: `get("machine", "threads")`.
  template <typename... Rest>
  const JsonValue* get(std::string_view key, Rest... rest) const noexcept {
    const JsonValue* v = find(key);
    if constexpr (sizeof...(rest) == 0) {
      return v;
    } else {
      return v ? v->get(rest...) : nullptr;
    }
  }

  /// The numeric value, or `fallback` when this is not a number.
  double number_or(double fallback) const noexcept {
    return is_number() ? number : fallback;
  }

  /// The string value, or `fallback` when this is not a string.
  std::string_view text_or(std::string_view fallback) const noexcept {
    return is_string() ? std::string_view{text} : fallback;
  }
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Returns nullopt on any syntax error.
std::optional<JsonValue> parse_json(std::string_view input);

}  // namespace cs::util
