#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include "util/format.h"

namespace cs::util {
namespace {

char lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_nonempty(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  for (auto piece : split(text, sep))
    if (!piece.empty()) out.push_back(piece);
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out{text};
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return lower(c); });
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (lower(a[i]) != lower(b[i])) return false;
  return true;
}

bool istarts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         iequals(text.substr(0, prefix.size()), prefix);
}

bool iends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         iequals(text.substr(text.size() - suffix.size()), suffix);
}

bool icontains(std::string_view text, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (text.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= text.size(); ++i)
    if (iequals(text.substr(i, needle.size()), needle)) return true;
  return false;
}

std::string human_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  std::size_t unit = 0;
  while (bytes >= 1024.0 && unit + 1 < std::size(kUnits)) {
    bytes /= 1024.0;
    ++unit;
  }
  return cs::util::fmt("{:.2f} {}", bytes, kUnits[unit]);
}

}  // namespace cs::util
