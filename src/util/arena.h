#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

/// Interned string storage for the paper-scale world.
///
/// The measurement's working set is dominated by names: 1M domains and
/// ~34M brute-forced subdomains, each appearing in the zone trees, the
/// dataset, and every derived report. Storing each as an owning
/// std::string repeats the bytes (plus a heap header) at every site;
/// StringArena stores each distinct string once in large append-only
/// blocks and hands out dense 32-bit ids, so hot artifacts can hold
/// columns of u32 instead of vectors of strings.
///
/// Ids are assigned in first-intern order, which makes them deterministic
/// wherever interning happens on an ordered path (a sequential build loop,
/// or the ordered reduction after a parallel_map) — the contract the
/// columnar snapshot codecs rely on and util_arena_test pins across
/// CS_THREADS values. The arena is NOT internally synchronized: intern on
/// one thread (readers of already-interned ids are safe once interning
/// stops).
namespace cs::util {

class StringArena {
 public:
  /// Id of the empty string, interned at construction so "no name" is
  /// always representable.
  static constexpr std::uint32_t kEmpty = 0;

  StringArena();

  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;
  StringArena(StringArena&&) = default;
  StringArena& operator=(StringArena&&) = default;

  /// Returns the id of `text`, storing it on first sight. Throws
  /// std::length_error past 2^32-1 distinct strings (paper scale is ~35M;
  /// the limit exists so the id type can stay u32).
  std::uint32_t intern(std::string_view text);

  /// The interned bytes for a previously returned id. The view stays
  /// valid for the arena's lifetime (blocks are never reallocated).
  /// Throws std::out_of_range for an id this arena never produced.
  std::string_view view(std::uint32_t id) const;

  /// Number of distinct interned strings (>= 1: the empty string).
  std::size_t size() const noexcept { return offsets_.size(); }

  /// Total payload bytes stored (excluding index overhead).
  std::uint64_t payload_bytes() const noexcept { return payload_bytes_; }

 private:
  struct Span {
    std::uint32_t block;
    std::uint32_t offset;
    std::uint32_t length;
  };

  /// Block size balances allocation count against worst-case waste when a
  /// string does not fit the current block's tail.
  static constexpr std::size_t kBlockBytes = 1u << 20;

  std::string_view store(std::string_view text);

  std::vector<std::vector<char>> blocks_;
  std::vector<Span> offsets_;  ///< id -> location
  /// Keys view into blocks_, which never move; values are ids.
  std::unordered_map<std::string_view, std::uint32_t> index_;
  std::uint64_t payload_bytes_ = 0;
};

}  // namespace cs::util
