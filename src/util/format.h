#pragma once

#include <cstdio>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

/// Minimal std::format replacement (the toolchain here is GCC 12, which
/// lacks <format>). Supports positional `{}` placeholders with an optional
/// printf-style floating spec: `{:.2f}`, `{:.4g}`, `{:.0f}`, `{:x}`.
/// `{{` and `}}` escape literal braces. Unmatched placeholders throw.
namespace cs::util {

namespace detail {

inline void append_spec_number(std::string& out, std::string_view spec,
                               double value) {
  char printf_spec[16];
  char buf[64];
  if (spec.size() + 3 >= sizeof(printf_spec))
    throw std::invalid_argument{"fmt: spec too long"};
  printf_spec[0] = '%';
  std::size_t n = 1;
  for (char c : spec) printf_spec[n++] = c;
  printf_spec[n] = '\0';
  std::snprintf(buf, sizeof(buf), printf_spec, value);
  out += buf;
}

inline void append_spec_number(std::string& out, std::string_view spec,
                               std::uint64_t value) {
  char printf_spec[16];
  char buf[64];
  if (spec.size() + 4 >= sizeof(printf_spec))
    throw std::invalid_argument{"fmt: spec too long"};
  printf_spec[0] = '%';
  std::size_t n = 1;
  // Integer specs need the ll length modifier before the conversion char.
  for (std::size_t i = 0; i + 1 < spec.size(); ++i) printf_spec[n++] = spec[i];
  printf_spec[n++] = 'l';
  printf_spec[n++] = 'l';
  printf_spec[n++] = spec.empty() ? 'u' : spec.back();
  printf_spec[n] = '\0';
  std::snprintf(buf, sizeof(buf), printf_spec,
                static_cast<unsigned long long>(value));
  out += buf;
}

template <typename T>
void append_arg(std::string& out, std::string_view spec, const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    out += value ? "true" : "false";
  } else if constexpr (std::is_floating_point_v<T>) {
    if (spec.empty())
      append_spec_number(out, "g", static_cast<double>(value));
    else
      append_spec_number(out, spec, static_cast<double>(value));
  } else if constexpr (std::is_integral_v<T>) {
    if (spec.empty()) {
      if constexpr (std::is_signed_v<T>)
        out += std::to_string(static_cast<long long>(value));
      else
        out += std::to_string(static_cast<unsigned long long>(value));
    } else if (spec.back() == 'f' || spec.back() == 'g' ||
               spec.back() == 'e') {
      append_spec_number(out, spec, static_cast<double>(value));
    } else {
      append_spec_number(out, spec, static_cast<std::uint64_t>(value));
    }
  } else if constexpr (std::is_convertible_v<T, std::string_view>) {
    out += std::string_view{value};
  } else {
    static_assert(std::is_convertible_v<T, std::string_view> ||
                      std::is_arithmetic_v<T>,
                  "fmt: unsupported argument type");
  }
}

inline void format_impl(std::string& out, std::string_view fmt) {
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
      out += '{';
      ++i;
    } else if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      out += '}';
      ++i;
    } else if (fmt[i] == '{') {
      throw std::invalid_argument{"fmt: more placeholders than arguments"};
    } else {
      out += fmt[i];
    }
  }
}

template <typename T, typename... Rest>
void format_impl(std::string& out, std::string_view fmt, const T& first,
                 const Rest&... rest) {
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
      out += '{';
      ++i;
      continue;
    }
    if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      out += '}';
      ++i;
      continue;
    }
    if (fmt[i] == '{') {
      const auto close = fmt.find('}', i);
      if (close == std::string_view::npos)
        throw std::invalid_argument{"fmt: unterminated placeholder"};
      std::string_view spec = fmt.substr(i + 1, close - i - 1);
      if (!spec.empty() && spec.front() == ':') spec.remove_prefix(1);
      append_arg(out, spec, first);
      format_impl(out, fmt.substr(close + 1), rest...);
      return;
    }
    out += fmt[i];
  }
  throw std::invalid_argument{"fmt: more arguments than placeholders"};
}

}  // namespace detail

/// Formats `args` into `fmt`'s `{}` placeholders.
template <typename... Args>
std::string fmt(std::string_view fmt_string, const Args&... args) {
  std::string out;
  out.reserve(fmt_string.size() + sizeof...(args) * 8);
  detail::format_impl(out, fmt_string, args...);
  return out;
}

}  // namespace cs::util
