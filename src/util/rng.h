#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

/// Deterministic random number generation for all stochastic components.
///
/// Every simulator in cloudscope derives its randomness from an explicit
/// seed so that each experiment is exactly reproducible. The generator is
/// xoshiro256** (public domain, Blackman & Vigna) seeded via splitmix64,
/// which gives solid statistical quality without pulling in <random>'s
/// implementation-defined distributions (those differ across standard
/// libraries and would break cross-platform reproducibility).
namespace cs::util {

/// Deterministic 64-bit PRNG with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with standard algorithms such as std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Standard normal via Box–Muller (deterministic pairing).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(normal(mu, sigma)). Used for flow-size tails.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy tails).
  double pareto(double xm, double alpha);

  /// Zipf-distributed rank in [1, n] with exponent s (rejection sampling;
  /// suitable for n up to millions). Used for domain popularity.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t weighted_pick(std::span<const double> weights);

  /// Derives an independent child generator; streams do not overlap in
  /// practice because the child is seeded from a splitmix64 step.
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Stable 64-bit hash of a string (FNV-1a). Handy for deriving
/// per-entity seeds from names so entity behaviour is order-independent.
std::uint64_t stable_hash(std::string_view text) noexcept;

}  // namespace cs::util
