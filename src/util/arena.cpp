#include "util/arena.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cs::util {

StringArena::StringArena() { intern({}); }

std::uint32_t StringArena::intern(std::string_view text) {
  if (const auto it = index_.find(text); it != index_.end()) return it->second;
  if (offsets_.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::length_error{"StringArena: interned string count exceeds u32"};
  const std::string_view stored = store(text);
  const auto id = static_cast<std::uint32_t>(offsets_.size());
  offsets_.push_back(Span{static_cast<std::uint32_t>(blocks_.size() - 1),
                          static_cast<std::uint32_t>(stored.data() -
                                                     blocks_.back().data()),
                          static_cast<std::uint32_t>(stored.size())});
  index_.emplace(stored, id);
  payload_bytes_ += stored.size();
  return id;
}

std::string_view StringArena::view(std::uint32_t id) const {
  if (id >= offsets_.size())
    throw std::out_of_range{"StringArena: unknown string id"};
  const Span& span = offsets_[id];
  return {blocks_[span.block].data() + span.offset, span.length};
}

std::string_view StringArena::store(std::string_view text) {
  // Oversized strings get a dedicated exact-fit block; everything else
  // packs into the shared tail block.
  const std::size_t need = std::max<std::size_t>(text.size(), 1);
  if (blocks_.empty() || blocks_.back().capacity() - blocks_.back().size() <
                             text.size()) {
    std::vector<char> block;
    block.reserve(std::max(kBlockBytes, need));
    blocks_.push_back(std::move(block));
  }
  auto& block = blocks_.back();
  const std::size_t at = block.size();
  block.insert(block.end(), text.begin(), text.end());
  return {block.data() + at, text.size()};
}

}  // namespace cs::util
