#include "util/geo.h"

#include <cmath>
#include <numbers>

namespace cs::util {
namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kFibreSpeedKmPerMs = 299792.458 / 1000.0 * (2.0 / 3.0);

double rad(double deg) noexcept { return deg * std::numbers::pi / 180.0; }
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double dlat = rad(b.lat_deg - a.lat_deg);
  const double dlon = rad(b.lon_deg - a.lon_deg);
  const double h =
      std::sin(dlat / 2) * std::sin(dlat / 2) +
      std::cos(rad(a.lat_deg)) * std::cos(rad(b.lat_deg)) *
          std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_delay_ms(const GeoPoint& a, const GeoPoint& b,
                            double route_inflation) noexcept {
  return haversine_km(a, b) * route_inflation / kFibreSpeedKmPerMs;
}

}  // namespace cs::util
