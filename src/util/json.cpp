#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace cs::util {
namespace {

/// Nesting cap: our artifacts nest three or four levels; 64 is comfortably
/// above that while keeping hostile input from overflowing the stack.
constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view in;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < in.size() &&
           std::isspace(static_cast<unsigned char>(in[pos])))
      ++pos;
  }

  bool eat(char c) {
    if (pos < in.size() && in[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (in.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (!eat('"')) return false;
    while (pos < in.size()) {
      const char c = in[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= in.size()) return false;
        const char esc = in[pos++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Decode the BMP code point to UTF-8; no surrogate pairing
            // (our writers only ever emit \u00XX control escapes).
            if (pos + 4 > in.size()) return false;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = in[pos++];
              cp <<= 4;
              if (h >= '0' && h <= '9')
                cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
              else
                return false;
            }
            if (cp < 0x80) {
              out->push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters must be escaped
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (pos >= in.size()) return false;
    const char c = in[pos];
    if (c == '{') {
      ++pos;
      out->kind = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!eat(':')) return false;
        JsonValue value;
        if (!parse_value(&value, depth + 1)) return false;
        out->fields.emplace_back(std::move(key), std::move(value));
        skip_ws();
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos;
      out->kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return true;
      while (true) {
        JsonValue value;
        if (!parse_value(&value, depth + 1)) return false;
        out->items.push_back(std::move(value));
        skip_ws();
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->text);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    if (c == '-' || (c >= '0' && c <= '9')) {
      // Validate the JSON number grammar by hand, then hand the span to
      // strtod (which alone would also accept "inf", hex, "1.", "+1"...).
      const std::size_t start = pos;
      if (in[pos] == '-') ++pos;
      if (pos >= in.size() || !std::isdigit(static_cast<unsigned char>(in[pos])))
        return false;
      if (in[pos] == '0') {
        ++pos;
      } else {
        while (pos < in.size() &&
               std::isdigit(static_cast<unsigned char>(in[pos])))
          ++pos;
      }
      if (pos < in.size() && in[pos] == '.') {
        ++pos;
        if (pos >= in.size() ||
            !std::isdigit(static_cast<unsigned char>(in[pos])))
          return false;
        while (pos < in.size() &&
               std::isdigit(static_cast<unsigned char>(in[pos])))
          ++pos;
      }
      if (pos < in.size() && (in[pos] == 'e' || in[pos] == 'E')) {
        ++pos;
        if (pos < in.size() && (in[pos] == '+' || in[pos] == '-')) ++pos;
        if (pos >= in.size() ||
            !std::isdigit(static_cast<unsigned char>(in[pos])))
          return false;
        while (pos < in.size() &&
               std::isdigit(static_cast<unsigned char>(in[pos])))
          ++pos;
      }
      out->kind = JsonValue::Kind::kNumber;
      const std::string span{in.substr(start, pos - start)};
      out->number = std::strtod(span.c_str(), nullptr);
      return true;
    }
    return false;
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : fields)
    if (name == key) return &value;
  return nullptr;
}

std::optional<JsonValue> parse_json(std::string_view input) {
  Parser parser{input};
  JsonValue root;
  if (!parser.parse_value(&root, 0)) return std::nullopt;
  parser.skip_ws();
  if (parser.pos != input.size()) return std::nullopt;  // trailing garbage
  return root;
}

}  // namespace cs::util
