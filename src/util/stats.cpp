#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace cs::util {
namespace {

/// Copies the finite values out of `xs`. NaNs violate std::sort's
/// strict-weak-ordering requirement (undefined behaviour) and poison any
/// quantile they touch, so every batch helper filters through this first.
/// Infinities are kept: they order correctly and a diverged sample is
/// still a sample.
std::vector<double> drop_nans(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (const double x : xs)
    if (!std::isnan(x)) out.push_back(x);
  return out;
}

/// Linear-interpolated quantile of an already-sorted, NaN-free sample.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  // Short-circuit exact hits and equal endpoints: the interpolation
  // formula would otherwise compute inf - inf = NaN when the sample
  // contains infinities (an endpoint quantile of {.., inf} must be inf).
  if (frac == 0.0 || sorted[lo] == sorted[hi]) return sorted[lo];
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double mean(std::span<const double> xs) noexcept {
  double total = 0.0;
  std::size_t n = 0;
  for (const double x : xs) {
    if (std::isnan(x)) continue;
    total += x;
    ++n;
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

double stddev(std::span<const double> xs) noexcept {
  const double m = mean(xs);
  double acc = 0.0;
  std::size_t n = 0;
  for (const double x : xs) {
    if (std::isnan(x)) continue;
    acc += (x - m) * (x - m);
    ++n;
  }
  return n >= 2 ? std::sqrt(acc / static_cast<double>(n)) : 0.0;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> copy = drop_nans(xs);
  if (copy.empty()) return 0.0;
  std::sort(copy.begin(), copy.end());
  return sorted_quantile(copy, q);
}

double min_of(std::span<const double> xs) noexcept {
  double best = 0.0;
  bool seen = false;
  for (const double x : xs) {
    if (std::isnan(x)) continue;
    if (!seen || x < best) best = x;
    seen = true;
  }
  return best;
}

double max_of(std::span<const double> xs) noexcept {
  double best = 0.0;
  bool seen = false;
  for (const double x : xs) {
    if (std::isnan(x)) continue;
    if (!seen || x > best) best = x;
    seen = true;
  }
  return best;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  std::vector<double> copy = drop_nans(xs);
  s.count = copy.size();
  s.dropped_nans = xs.size() - copy.size();
  if (copy.empty()) return s;
  std::sort(copy.begin(), copy.end());
  s.mean = mean(copy);
  s.stddev = stddev(copy);
  s.min = copy.front();
  s.p25 = sorted_quantile(copy, 0.25);
  s.median = sorted_quantile(copy, 0.5);
  s.p75 = sorted_quantile(copy, 0.75);
  s.p95 = sorted_quantile(copy, 0.95);
  s.p99 = sorted_quantile(copy, 0.99);
  s.max = copy.back();
  return s;
}

void RunningStats::add(double x) noexcept {
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace cs::util
