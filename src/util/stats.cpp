#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace cs::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const double pos = q * static_cast<double>(copy.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] + (copy[hi] - copy[lo]) * frac;
}

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  auto q = [&copy](double quant) {
    const double pos = quant * static_cast<double>(copy.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, copy.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return copy[lo] + (copy[hi] - copy[lo]) * frac;
  };
  s.mean = mean(copy);
  s.stddev = stddev(copy);
  s.min = copy.front();
  s.p25 = q(0.25);
  s.median = q(0.5);
  s.p75 = q(0.75);
  s.p95 = q(0.95);
  s.p99 = q(0.99);
  s.max = copy.back();
  return s;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace cs::util
