#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// Small statistics helpers shared by analysis and benchmarking code.
///
/// All batch helpers ignore NaN inputs: lossy measurement paths (timed-out
/// probes, injected faults) can surface NaN samples, and a NaN fed to
/// std::sort breaks strict weak ordering — undefined behaviour that used
/// to return garbage percentiles. Results are therefore computed over the
/// non-NaN subset and are themselves never NaN (empty subset = 0, like
/// empty input). Infinities are kept; they order fine.
namespace cs::util {

/// Arithmetic mean of non-NaN values; 0 when none.
double mean(std::span<const double> xs) noexcept;

/// Population standard deviation of non-NaN values; 0 for fewer than 2.
double stddev(std::span<const double> xs) noexcept;

/// Exact median of non-NaN values (copies and sorts). 0 when none.
double median(std::span<const double> xs);

/// Linear-interpolated quantile over non-NaN values, q clamped to [0,1].
/// Returns 0 when no non-NaN value exists.
double quantile(std::span<const double> xs, double q);

/// Smallest non-NaN element; 0 when none.
double min_of(std::span<const double> xs) noexcept;

/// Largest non-NaN element; 0 when none.
double max_of(std::span<const double> xs) noexcept;

/// Five-number-style summary of a sample. `count` is the number of
/// samples actually summarized; NaN inputs are excluded and tallied in
/// `dropped_nans` so data-quality reporting can surface them.
struct Summary {
  std::size_t count = 0;
  std::size_t dropped_nans = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes the full summary in one pass over a sorted copy.
Summary summarize(std::span<const double> xs);

/// Accumulates a streaming mean/variance (Welford) without storing
/// samples. NaN samples are ignored (and counted) rather than poisoning
/// every later moment.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  std::size_t nan_count() const noexcept { return nan_count_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  std::size_t nan_count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace cs::util
