#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// Small statistics helpers shared by analysis and benchmarking code.
namespace cs::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Population standard deviation; returns 0 for fewer than 2 samples.
double stddev(std::span<const double> xs) noexcept;

/// Exact median (copies and partially sorts). Returns 0 for empty input.
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]. Returns 0 for empty input.
double quantile(std::span<const double> xs, double q);

/// Smallest element; 0 for empty input.
double min_of(std::span<const double> xs) noexcept;

/// Largest element; 0 for empty input.
double max_of(std::span<const double> xs) noexcept;

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes the full summary in one pass over a sorted copy.
Summary summarize(std::span<const double> xs);

/// Accumulates a streaming mean/variance (Welford) without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace cs::util
