#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// Versioned, checksummed binary snapshots for pipeline-stage artifacts.
///
/// The paper's campaigns (34M-subdomain DNS probing, a week of capture)
/// are exactly the workloads that die partway; cs::snap lets a killed run
/// resume from its last completed stage instead of redoing — or worse,
/// silently corrupting — earlier work. The format is deliberately dumb:
///
///   "CSNP" | u32 format version | u64 config hash | stage name |
///   u64 payload length | payload bytes | u64 FNV-1a(everything above)
///
/// All integers are little-endian and length-prefixed where variable.
/// Anything that does not validate — short file, foreign magic, version
/// or config-hash mismatch, checksum failure, trailing bytes — raises a
/// SnapshotError with the reason; the store turns that into "rebuild the
/// stage", never into a crash or a silent reuse of stale data.
namespace cs::snap {

/// Bump whenever any artifact codec changes shape; a mismatch rejects the
/// snapshot and forces a rebuild. v2: the dataset artifact moved to its
/// columnar (interned-name) form.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Raised by the reader/unframer on any malformed snapshot.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a over a byte span (the same hash family the fault keys use).
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept;

/// Append-only little-endian encoder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed byte string.
  void str(std::string_view v);
  /// Element count prefix for any repeated field.
  void count(std::size_t n) { u64(n); }

  std::span<const std::uint8_t> bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked mirror of Writer; throws SnapshotError on overrun.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  bool boolean();
  std::string str();
  /// Reads an element count and rejects counts that could not possibly
  /// fit in the remaining bytes (`min_element_bytes` each) — an OOM guard
  /// against corrupted length fields.
  std::size_t count(std::size_t min_element_bytes = 1);

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool done() const noexcept { return pos_ == bytes_.size(); }
  /// Throws if any undecoded bytes remain (payload/codec mismatch).
  void require_done() const;

 private:
  std::span<const std::uint8_t> take(std::size_t n);

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Wraps a payload in the full snapshot file image (header + checksum).
std::vector<std::uint8_t> frame_snapshot(std::string_view stage,
                                         std::uint64_t config_hash,
                                         std::span<const std::uint8_t> payload);

/// Validates the framing of a whole snapshot file and returns its payload.
/// Throws SnapshotError naming the defect: truncation, bad magic, format
/// version mismatch, config-hash mismatch, stage-name mismatch, checksum
/// failure, or trailing garbage.
std::vector<std::uint8_t> unframe_snapshot(std::span<const std::uint8_t> file,
                                           std::string_view stage,
                                           std::uint64_t config_hash);

}  // namespace cs::snap
