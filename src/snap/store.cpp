#include "snap/store.h"

#include <cstdio>
#include <fstream>
#include <system_error>
#include <utility>

#include "obs/log.h"
#include "util/format.h"

namespace cs::snap {

Store::Store(std::filesystem::path dir, std::uint64_t config_hash)
    : dir_(std::move(dir)), config_hash_(config_hash) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    obs::log_warn("snap", "cannot create checkpoint dir {}: {}", dir_.string(),
                  ec.message());
}

std::filesystem::path Store::path_for(std::string_view stage) const {
  return dir_ / (std::string{stage} + ".snap");
}

std::optional<std::vector<std::uint8_t>> Store::load_payload(
    std::string_view stage) {
  const auto path = path_for(stage);
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    record(Event::Kind::kMissing, stage, {});
    return std::nullopt;
  }
  std::vector<std::uint8_t> file{std::istreambuf_iterator<char>{in},
                                 std::istreambuf_iterator<char>{}};
  try {
    return unframe_snapshot(file, stage, config_hash_);
  } catch (const SnapshotError& e) {
    record(Event::Kind::kRejected, stage, e.what());
    return std::nullopt;
  }
}

bool Store::save_payload(std::string_view stage,
                         std::span<const std::uint8_t> payload) {
  const auto file = frame_snapshot(stage, config_hash_, payload);
  const auto final_path = path_for(stage);
  const auto tmp_path =
      dir_ / (std::string{stage} + ".snap.tmp");
  {
    std::ofstream out{tmp_path, std::ios::binary | std::ios::trunc};
    if (!out) {
      obs::log_warn("snap", "cannot open {} for writing", tmp_path.string());
      return false;
    }
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
    out.flush();
    if (!out) {
      obs::log_warn("snap", "short write to {}", tmp_path.string());
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    obs::log_warn("snap", "cannot rename {} into place: {}", tmp_path.string(),
                  ec.message());
    std::filesystem::remove(tmp_path, ec);
    return false;
  }
  record(Event::Kind::kSaved, stage, {});
  return true;
}

bool Store::remove(std::string_view stage) {
  std::error_code ec;
  const bool removed = std::filesystem::remove(path_for(stage), ec);
  if (ec)
    obs::log_warn("snap", "cannot remove snapshot for stage '{}': {}", stage,
                  ec.message());
  return removed && !ec;
}

void Store::record(Event::Kind kind, std::string_view stage,
                   std::string detail) {
  if (kind == Event::Kind::kRejected)
    obs::log_warn("snap", "rejecting snapshot for stage '{}': {}", stage,
                  detail);
  else if (kind == Event::Kind::kLoaded)
    obs::log_info("snap", "resumed stage '{}' from {}", stage,
                  path_for(stage).string());
  events_.push_back({kind, std::string{stage}, std::move(detail)});
}

}  // namespace cs::snap
