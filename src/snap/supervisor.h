#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

/// Per-stage supervision: bounded retries with deterministic backoff, a
/// wall-clock deadline, and an explicit on-exhaustion policy. The paper's
/// pipeline is a chain of expensive stages (enumerate 97k domains, replay
/// a week of capture, run a measurement campaign); a transient failure in
/// one of them should cost a retry, not the run — and a persistent one
/// should be a *policy decision* (fail the run, or ship a degraded report
/// that says so) rather than an unhandled exception.
namespace cs::snap {

/// What to do when a stage exhausts its retry budget.
enum class OnExhausted {
  kFail,     ///< rethrow the last error; the run dies loudly
  kDegrade,  ///< substitute an empty-but-valid artifact and keep going
};

struct SupervisorOptions {
  /// Total tries per stage (first attempt + retries). Clamped to >= 1.
  int max_attempts = 3;
  /// Backoff before retry i (1-based) is base * 2^(i-1), capped. Purely
  /// deterministic — no jitter — so supervised runs stay reproducible.
  int backoff_base_ms = 25;
  int backoff_cap_ms = 1000;
  /// Wall-clock budget per stage, including backoff sleeps; 0 = unlimited.
  /// Checked before each retry (a running attempt is never interrupted).
  int stage_deadline_ms = 0;
  OnExhausted on_exhausted = OnExhausted::kFail;
};

/// The record a supervised stage leaves behind, surfaced verbatim in the
/// data-quality report.
struct StageRun {
  std::string stage;
  int attempts = 0;          ///< build attempts actually made (0 if resumed)
  bool from_snapshot = false;
  bool degraded = false;
  bool deadline_hit = false;
  std::string last_error;    ///< empty when the final attempt succeeded
};

/// Thrown by the fault hook when CS_FAULT's stage_abort rate fires for
/// (stage, attempt); exercises the retry path end to end.
class InjectedStageAbort : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Stable key for one (stage, attempt) pair: a property of the schedule,
/// not of threads or call order, like every other fault key.
std::uint64_t stage_abort_key(std::string_view stage, int attempt) noexcept;

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options = {}) : options_(options) {}

  const SupervisorOptions& options() const noexcept { return options_; }

  /// Backoff (ms) applied before 1-based retry `retry`.
  int backoff_delay_ms(int retry) const noexcept;

  /// Runs `build` under supervision, filling `run` as it goes. On
  /// success returns build's result. On exhaustion: kFail rethrows the
  /// last error; kDegrade marks the run degraded and returns
  /// `fallback()` instead.
  template <typename Build, typename Fallback>
  auto run(StageRun& run, Build&& build, Fallback&& fallback)
      -> decltype(build()) {
    const auto started = std::chrono::steady_clock::now();
    const int attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0 && !pause_before_retry(run, attempt, started)) break;
      ++run.attempts;
      try {
        maybe_inject_abort(run.stage, attempt);
        auto result = build();
        run.last_error.clear();
        return result;
      } catch (const std::exception& e) {
        run.last_error = e.what();
      }
    }
    if (options_.on_exhausted == OnExhausted::kFail)
      throw std::runtime_error{"stage '" + run.stage + "' failed after " +
                               std::to_string(run.attempts) +
                               " attempt(s): " + run.last_error};
    run.degraded = true;
    return fallback();
  }

 private:
  /// Sleeps the deterministic backoff; returns false (skipping further
  /// attempts) when the stage deadline is already spent.
  bool pause_before_retry(StageRun& run, int retry,
                          std::chrono::steady_clock::time_point started) const;

  /// Throws InjectedStageAbort when the active fault plan decides this
  /// (stage, attempt) dies. Fires before the build body runs, so an
  /// aborted attempt leaves no partial side effects behind.
  static void maybe_inject_abort(const std::string& stage, int attempt);

  SupervisorOptions options_;
};

}  // namespace cs::snap
