#include "snap/codec.h"

#include <bit>

#include "util/format.h"

namespace cs::snap {
namespace {

constexpr std::uint8_t kMagic[4] = {'C', 'S', 'N', 'P'};

[[noreturn]] void reject(std::string message) {
  throw SnapshotError{std::move(message)};
}

}  // namespace

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto byte : bytes) {
    h ^= byte;
    h *= 1099511628211ULL;
  }
  return h;
}

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view v) {
  count(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

std::span<const std::uint8_t> Reader::take(std::size_t n) {
  if (n > remaining())
    reject(util::fmt("snapshot truncated: need {} more bytes, have {}", n,
                     remaining()));
  const auto view = bytes_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::uint8_t Reader::u8() { return take(1)[0]; }

std::uint16_t Reader::u16() {
  const auto b = take(2);
  return static_cast<std::uint16_t>(b[0] | (std::uint16_t{b[1]} << 8));
}

std::uint32_t Reader::u32() {
  const auto b = take(4);
  return b[0] | (std::uint32_t{b[1]} << 8) | (std::uint32_t{b[2]} << 16) |
         (std::uint32_t{b[3]} << 24);
}

std::uint64_t Reader::u64() {
  const std::uint64_t lo = u32();
  return lo | (std::uint64_t{u32()} << 32);
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

bool Reader::boolean() {
  const auto v = u8();
  if (v > 1) reject(util::fmt("snapshot bool field holds {}", v));
  return v == 1;
}

std::string Reader::str() {
  const auto n = count();
  const auto b = take(n);
  return std::string{reinterpret_cast<const char*>(b.data()), b.size()};
}

std::size_t Reader::count(std::size_t min_element_bytes) {
  const auto n = u64();
  const auto limit = min_element_bytes ? remaining() / min_element_bytes
                                       : remaining();
  if (n > limit)
    reject(util::fmt("snapshot count {} exceeds remaining payload ({} bytes)",
                     n, remaining()));
  return static_cast<std::size_t>(n);
}

void Reader::require_done() const {
  if (!done())
    reject(util::fmt("snapshot payload has {} trailing bytes", remaining()));
}

std::vector<std::uint8_t> frame_snapshot(
    std::string_view stage, std::uint64_t config_hash,
    std::span<const std::uint8_t> payload) {
  Writer w;
  for (const auto byte : kMagic) w.u8(byte);
  w.u32(kFormatVersion);
  w.u64(config_hash);
  w.str(stage);
  w.count(payload.size());
  auto buf = std::move(w).take();
  buf.insert(buf.end(), payload.begin(), payload.end());
  const auto checksum = fnv1a(buf);
  Writer trailer;
  trailer.u64(checksum);
  const auto t = trailer.bytes();
  buf.insert(buf.end(), t.begin(), t.end());
  return buf;
}

std::vector<std::uint8_t> unframe_snapshot(std::span<const std::uint8_t> file,
                                           std::string_view stage,
                                           std::uint64_t config_hash) {
  if (file.size() < sizeof(kMagic) + 4 + 8 + 8 + 8 + 8)
    reject(util::fmt("snapshot file too short ({} bytes)", file.size()));

  // Checksum first: everything else is untrustworthy until it holds.
  const auto body = file.first(file.size() - 8);
  Reader trailer{file.subspan(file.size() - 8)};
  const auto stored = trailer.u64();
  const auto computed = fnv1a(body);
  if (stored != computed)
    reject(util::fmt("snapshot checksum mismatch (stored 0x{:x}, computed "
                     "0x{:x}) — file corrupted",
                     stored, computed));

  Reader r{body};
  for (const auto expected : kMagic)
    if (r.u8() != expected) reject("snapshot magic mismatch: not a CSNP file");
  const auto version = r.u32();
  if (version != kFormatVersion)
    reject(util::fmt("snapshot format version {} != supported {}", version,
                     kFormatVersion));
  const auto hash = r.u64();
  if (hash != config_hash)
    reject(util::fmt("snapshot config hash 0x{:x} != current study 0x{:x} — "
                     "built from a different configuration",
                     hash, config_hash));
  const auto name = r.str();
  if (name != stage)
    reject(util::fmt("snapshot holds stage '{}', expected '{}'", name, stage));
  const auto payload_len = r.count();
  if (payload_len != r.remaining())
    reject(util::fmt("snapshot payload length {} != remaining {} bytes",
                     payload_len, r.remaining()));
  const auto payload = body.subspan(body.size() - payload_len);
  return {payload.begin(), payload.end()};
}

}  // namespace cs::snap
