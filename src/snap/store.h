#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "snap/codec.h"

/// Checkpoint directory management: one `<stage>.snap` file per completed
/// pipeline stage, written atomically (tmp + rename) so a crash mid-write
/// never leaves a half snapshot where the next run would find it.
namespace cs::snap {

/// What happened when a stage asked the store for its snapshot; surfaced
/// in the data-quality report so resume behaviour is auditable.
struct Event {
  enum class Kind {
    kLoaded,    ///< snapshot validated and decoded; stage skipped
    kMissing,   ///< no file — first run or stage never completed
    kRejected,  ///< file present but failed validation; stage rebuilds
    kSaved,     ///< stage result snapshotted
  };
  Kind kind;
  std::string stage;
  std::string detail;  ///< rejection reason, empty otherwise
};

class Store {
 public:
  /// Creates the directory if needed. `config_hash` binds every snapshot
  /// to the study configuration that produced it.
  Store(std::filesystem::path dir, std::uint64_t config_hash);

  /// Loads and decodes `<stage>.snap`. Any defect — truncation, bad
  /// checksum, version or config-hash mismatch, codec error — is recorded
  /// as a kRejected event and reported as nullopt: the caller rebuilds.
  template <typename T>
  std::optional<T> load(std::string_view stage) {
    const auto payload = load_payload(stage);
    if (!payload) return std::nullopt;
    try {
      Reader r{*payload};
      T value{};
      decode_artifact(r, value);
      r.require_done();
      record(Event::Kind::kLoaded, stage, {});
      return value;
    } catch (const SnapshotError& e) {
      record(Event::Kind::kRejected, stage, e.what());
      return std::nullopt;
    }
  }

  /// Encodes, frames, and atomically writes `<stage>.snap`. Returns false
  /// (after logging) if the filesystem refuses; the pipeline carries on —
  /// a failed snapshot only costs the next run a rebuild.
  template <typename T>
  bool save(std::string_view stage, const T& value) {
    Writer w;
    encode_artifact(w, value);
    return save_payload(stage, w.bytes());
  }

  /// Deletes `<stage>.snap` if present (used to retire mid-stage partial
  /// checkpoints once the full stage snapshot lands). Returns true if a
  /// file was removed. Not an Event: removal is bookkeeping, not a resume
  /// decision the data-quality report needs to audit.
  bool remove(std::string_view stage);

  const std::filesystem::path& dir() const noexcept { return dir_; }
  std::uint64_t config_hash() const noexcept { return config_hash_; }
  const std::vector<Event>& events() const noexcept { return events_; }

  std::filesystem::path path_for(std::string_view stage) const;

 private:
  std::optional<std::vector<std::uint8_t>> load_payload(
      std::string_view stage);
  bool save_payload(std::string_view stage,
                    std::span<const std::uint8_t> payload);
  void record(Event::Kind kind, std::string_view stage,
              std::string detail);

  std::filesystem::path dir_;
  std::uint64_t config_hash_;
  std::vector<Event> events_;
};

}  // namespace cs::snap
