#include "snap/supervisor.h"

#include <thread>

#include "fault/fault.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace cs::snap {

std::uint64_t stage_abort_key(std::string_view stage, int attempt) noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (const char c : stage) mix(static_cast<std::uint8_t>(c));
  mix(0xFF);  // separator: "a" attempt 0x01 != "a\x01" attempt 0
  for (int i = 0; i < 4; ++i)
    mix(static_cast<std::uint8_t>(static_cast<std::uint32_t>(attempt) >>
                                  (8 * i)));
  return h;
}

int Supervisor::backoff_delay_ms(int retry) const noexcept {
  if (retry < 1 || options_.backoff_base_ms <= 0) return 0;
  // base * 2^(retry-1), saturating at the cap without overflow.
  std::int64_t delay = options_.backoff_base_ms;
  for (int i = 1; i < retry && delay < options_.backoff_cap_ms; ++i)
    delay *= 2;
  if (options_.backoff_cap_ms > 0 && delay > options_.backoff_cap_ms)
    delay = options_.backoff_cap_ms;
  return static_cast<int>(delay);
}

bool Supervisor::pause_before_retry(
    StageRun& run, int retry,
    std::chrono::steady_clock::time_point started) const {
  if (options_.stage_deadline_ms > 0) {
    const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
    if (spent >= options_.stage_deadline_ms) {
      run.deadline_hit = true;
      obs::log_warn("snap", "stage '{}' hit its {}ms deadline after {} attempt(s)",
                    run.stage, options_.stage_deadline_ms, run.attempts);
      return false;
    }
  }
  const int delay = backoff_delay_ms(retry);
  obs::log_warn("snap", "stage '{}' attempt {} failed ({}); retrying in {}ms",
                run.stage, run.attempts, run.last_error, delay);
  static auto& retries = obs::counter("snap.supervisor.retries");
  retries.inc();
  if (delay > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds{delay});
  return true;
}

void Supervisor::maybe_inject_abort(const std::string& stage, int attempt) {
  const auto* plan = fault::active_plan();
  if (!plan) [[likely]] return;
  if (!plan->decide(fault::Kind::kStageAbort, stage_abort_key(stage, attempt)))
    return;
  static auto& aborts = obs::counter("fault.stage.abort");
  aborts.inc();
  throw InjectedStageAbort{"injected stage abort: stage '" + stage +
                           "' attempt " + std::to_string(attempt + 1)};
}

}  // namespace cs::snap
