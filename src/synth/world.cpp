#include "synth/world.h"

#include <algorithm>
#include <stdexcept>

#include "dns/wordlist.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/format.h"

namespace cs::synth {
namespace {

using cloud::ProviderKind;
using dns::Name;
using dns::ResourceRecord;
using dns::SoaRecord;

SoaRecord soa_of(const Name& origin) {
  SoaRecord soa;
  soa.mname = *origin.child("ns1");
  soa.rname = *origin.child("hostmaster");
  soa.serial = 2013032701;
  return soa;
}

/// Deployment spec for one of the paper's named top domains.
struct MarqueeSpec {
  const char* name;
  std::size_t rank;
  ProviderKind provider;
  int cloud_subdomains;
  int vm_front, elb_front, paas_front, cdn_subs;
  int elb_proxy_budget;  ///< total physical ELB IPs across the domain
  int region_count;
  /// Zone-usage plan: how many subdomains use 1, 2, 3 zones.
  int zones_k1, zones_k2, zones_k3;
  const char* customer_country;
};

/// Tables 4/8/10/15 distilled. PaaS entries for EC2 domains use Heroku
/// unless noted; 163.com / hao123.com's "other CDN" is modeled as opaque.
constexpr MarqueeSpec kMarquees[] = {
    // EC2 domains (Tables 4, 8, 15).
    {"amazon.com", 9, ProviderKind::kEc2, 2, 0, 2, 1, 0, 27, 1, 0, 0, 2,
     "US"},
    {"linkedin.com", 13, ProviderKind::kEc2, 3, 1, 1, 1, 0, 1, 2, 1, 1, 1,
     "US"},
    {"163.com", 29, ProviderKind::kEc2, 4, 0, 0, 0, 0, 0, 1, 4, 0, 0, "CN"},
    {"pinterest.com", 35, ProviderKind::kEc2, 18, 18, 0, 0, 0, 0, 1, 10, 0,
     8, "US"},
    {"fc2.com", 36, ProviderKind::kEc2, 14, 10, 4, 0, 0, 68, 2, 1, 11, 2,
     "JP"},
    {"conduit.com", 38, ProviderKind::kEc2, 1, 0, 1, 1, 0, 3, 1, 0, 1, 0,
     "US"},
    {"ask.com", 42, ProviderKind::kEc2, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0, "US"},
    {"apple.com", 47, ProviderKind::kEc2, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0,
     "US"},
    {"imdb.com", 48, ProviderKind::kEc2, 2, 2, 0, 0, 1, 0, 1, 2, 0, 0, "US"},
    {"hao123.com", 51, ProviderKind::kEc2, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0,
     "CN"},
    {"go.com", 59, ProviderKind::kEc2, 4, 4, 0, 0, 0, 0, 1, 4, 0, 0, "US"},
    // Azure domains (Table 10).
    {"live.com", 7, ProviderKind::kAzure, 18, 18, 0, 0, 0, 0, 3, 18, 0, 0,
     "US"},
    {"msn.com", 18, ProviderKind::kAzure, 89, 89, 0, 0, 0, 0, 5, 78, 11, 0,
     "US"},
    {"bing.com", 20, ProviderKind::kAzure, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0,
     "US"},
    {"microsoft.com", 31, ProviderKind::kAzure, 11, 11, 0, 0, 0, 0, 5, 7, 4,
     0, "US"},
};

const char* kTlds[] = {"com", "net", "org", "de", "jp", "cn", "ru", "br"};
constexpr double kTldWeights[] = {0.55, 0.12, 0.09, 0.06, 0.05,
                                  0.05, 0.04, 0.04};

struct CountryWeight {
  const char* country;
  double weight;
};
constexpr CountryWeight kCustomerCountries[] = {
    {"US", 0.34}, {"CN", 0.12}, {"IN", 0.08}, {"JP", 0.07}, {"BR", 0.05},
    {"DE", 0.05}, {"GB", 0.04}, {"RU", 0.04}, {"FR", 0.03}, {"CA", 0.02},
    {"AU", 0.02}, {"KR", 0.02}, {"MX", 0.02}, {"ES", 0.02}, {"IT", 0.02},
    {"NL", 0.01}, {"SG", 0.01}, {"IE", 0.01}, {"HK", 0.01}, {"ID", 0.02},
};

/// Table 9 EC2 subdomain-count weights, normalized at use.
struct RegionWeight {
  const char* region;
  double weight;
};
constexpr RegionWeight kEc2RegionWeights[] = {
    {"ec2.us-east-1", 521681}, {"ec2.eu-west-1", 116366},
    {"ec2.us-west-1", 40548},  {"ec2.us-west-2", 15635},
    {"ec2.ap-southeast-1", 20871}, {"ec2.ap-northeast-1", 16965},
    {"ec2.sa-east-1", 14866},  {"ec2.ap-southeast-2", 554},
};
constexpr RegionWeight kAzureRegionWeights[] = {
    {"az.us-east", 862},  {"az.us-west", 558},       {"az.us-north", 2071},
    {"az.us-south", 1395}, {"az.eu-west", 1035},      {"az.eu-north", 1205},
    {"az.ap-southeast", 632}, {"az.ap-east", 502},
};

}  // namespace

std::string to_string(FrontEnd front_end) {
  switch (front_end) {
    case FrontEnd::kVm:
      return "VM";
    case FrontEnd::kElb:
      return "ELB";
    case FrontEnd::kBeanstalk:
      return "Beanstalk";
    case FrontEnd::kHerokuElb:
      return "Heroku+ELB";
    case FrontEnd::kHeroku:
      return "Heroku";
    case FrontEnd::kCloudService:
      return "CloudService";
    case FrontEnd::kTrafficManager:
      return "TrafficManager";
    case FrontEnd::kOpaqueCname:
      return "Opaque";
    case FrontEnd::kCdnOnly:
      return "CDN-only";
    case FrontEnd::kOtherHosting:
      return "Other";
  }
  return "?";
}

/// Builds the world in dependency order: providers, DNS skeleton,
/// infrastructure zones, name-server fleets, then the ranked domains.
class World::Builder {
 public:
  Builder(World& world)
      : world_(world),
        rng_(world.config_.seed),
        elbs_(*world.ec2_, world.config_.seed ^ 1),
        heroku_(*world.ec2_, world.config_.seed ^ 2),
        beanstalk_(elbs_, world.config_.seed ^ 3),
        cloudfront_(*world.ec2_, world.config_.seed ^ 4),
        cloud_services_(*world.azure_, world.config_.seed ^ 5),
        traffic_manager_(cloud_services_, world.config_.seed ^ 6) {}

  void build() {
    setup_dns_skeleton();
    setup_infra_zones();
    setup_fleets();
    plant_domains();
    index_subdomains();
  }

 private:
  // --- address pools -------------------------------------------------
  net::Ipv4 other_ip() {
    // Non-cloud hosting space.
    const std::uint32_t v = (70u << 24) + other_counter_++;
    return net::Ipv4{v};
  }
  net::Ipv4 infra_ip() {
    const std::uint32_t v = (192u << 24) + (175u << 16) + infra_counter_++;
    return net::Ipv4{v};
  }

  // --- DNS skeleton ---------------------------------------------------
  void setup_dns_skeleton() {
    root_server_ = std::make_shared<dns::AuthoritativeServer>();
    root_zone_ = &root_server_->add_zone(Name{}, soa_of(Name{}));
    const net::Ipv4 root_addr{198, 41, 0, 4};
    world_.network_.attach(root_addr, root_server_);
    world_.root_servers_ = {root_addr};

    for (const auto* tld : kTlds) {
      auto server = std::make_shared<dns::AuthoritativeServer>();
      const Name origin = Name::must_parse(tld);
      tld_zones_[std::string{tld}] = &server->add_zone(origin, soa_of(origin));
      const net::Ipv4 addr = infra_ip();
      world_.network_.attach(addr, server);
      const Name ns_name = Name::must_parse(
          util::fmt("{}.gtld-servers.net", tld));
      root_zone_->add(ResourceRecord::ns(origin, ns_name));
      root_zone_->add(ResourceRecord::a(ns_name, addr));
      tld_servers_[std::string{tld}] = std::move(server);
    }
  }

  dns::Zone* tld_zone(const Name& domain) {
    const auto it = tld_zones_.find(std::string{domain.labels().back()});
    return it == tld_zones_.end() ? nullptr : it->second;
  }

  /// Hosts `origin` on `server`, attaches the server at `ns_addrs`, and
  /// installs the delegation (with glue) in the parent TLD zone.
  dns::Zone* host_zone(const std::shared_ptr<dns::AuthoritativeServer>& server,
                       const Name& origin,
                       const std::vector<Name>& ns_names,
                       const std::vector<net::Ipv4>& ns_addrs) {
    auto* zone = &server->add_zone(origin, soa_of(origin));
    dns::Zone* parent = tld_zone(origin);
    for (std::size_t i = 0; i < ns_names.size(); ++i) {
      zone->add(ResourceRecord::ns(origin, ns_names[i]));
      if (ns_names[i].is_subdomain_of(origin) && i < ns_addrs.size())
        zone->add(ResourceRecord::a(ns_names[i], ns_addrs[i]));
      if (parent) {
        parent->add(ResourceRecord::ns(origin, ns_names[i]));
        if (i < ns_addrs.size())
          parent->add(ResourceRecord::a(ns_names[i], ns_addrs[i]));
      }
    }
    for (const auto addr : ns_addrs) world_.network_.attach(addr, server);
    return zone;
  }

  // --- infrastructure zones --------------------------------------------
  void setup_infra_zones() {
    infra_server_ = std::make_shared<dns::AuthoritativeServer>();
    auto host_infra = [this](const char* origin_text) {
      const Name origin = Name::must_parse(origin_text);
      const Name ns1 = *origin.child("ns1");
      const Name ns2 = *origin.child("ns2");
      return host_zone(infra_server_, origin, {ns1, ns2},
                       {infra_ip(), infra_ip()});
    };
    amazonaws_zone_ = host_infra("amazonaws.com");
    beanstalk_zone_ = host_infra("elasticbeanstalk.com");
    heroku_zone_ = host_infra("heroku.com");
    herokuapp_zone_ = host_infra("herokuapp.com");
    cloudfront_zone_ = host_infra("cloudfront.net");
    cloudapp_zone_ = host_infra("cloudapp.net");
    tm_zone_ = host_infra("trafficmanager.net");
    // Traffic Manager's client-dependent answers (see deploy_traffic_manager).
    tm_members_ = std::make_shared<std::map<Name, std::vector<Name>>>();
    infra_server_->set_dynamic_answer(
        [members = tm_members_](net::Ipv4 client, const Name& qname)
            -> std::optional<ResourceRecord> {
          const auto it = members->find(qname);
          if (it == members->end() || it->second.empty())
            return std::nullopt;
          const auto& pick =
              it->second[client.value() % it->second.size()];
          return ResourceRecord::cname(qname, pick, 30);
        });
    msecnd_zone_ = host_infra("msecnd.net");
    opaque_zone_ = host_infra("opaq-edge.net");

    // Heroku's shared proxy CNAME target resolves to fleet members; the
    // fleet grows lazily, so records are added when apps are created.
  }

  // --- name-server fleets ----------------------------------------------
  struct Fleet {
    std::shared_ptr<dns::AuthoritativeServer> server;
    std::vector<Name> ns_names;
    std::vector<net::Ipv4> ns_addrs;
    DomainTruth::DnsHosting kind = DomainTruth::DnsHosting::kExternal;
    /// Zones on this fleet that permit AXFR (per-zone policy).
    std::shared_ptr<std::set<Name>> axfr_open_zones;
  };

  void add_fleet(DomainTruth::DnsHosting kind, const std::string& zone_name,
                 int ns_count, const std::vector<net::Ipv4>& addrs) {
    Fleet fleet;
    fleet.kind = kind;
    fleet.server = std::make_shared<dns::AuthoritativeServer>();
    const Name origin = Name::must_parse(zone_name);
    for (int i = 0; i < ns_count; ++i) {
      fleet.ns_names.push_back(
          *origin.child(util::fmt("ns{}", i + 1)));
      fleet.ns_addrs.push_back(addrs.at(static_cast<std::size_t>(i)));
    }
    host_zone(fleet.server, origin, fleet.ns_names, fleet.ns_addrs);
    fleet.axfr_open_zones = std::make_shared<std::set<Name>>();
    fleet.server->set_axfr_policy(
        [open = fleet.axfr_open_zones](net::Ipv4, const Name& zone) {
          return open->contains(zone);
        });
    fleets_[kind].push_back(std::move(fleet));
  }

  void setup_fleets() {
    // External DNS providers (the 86% case), 4-10 servers each.
    for (int k = 0; k < 24; ++k) {
      const int ns_count = 4 + static_cast<int>(rng_.next_below(7));
      std::vector<net::Ipv4> addrs;
      for (int i = 0; i < ns_count; ++i) addrs.push_back(other_ip());
      add_fleet(DomainTruth::DnsHosting::kExternal,
                util::fmt("dns{}-provider.net", k + 1), ns_count, addrs);
    }
    // Route53-like fleets: names carry "route53", addresses sit in the
    // CloudFront range (the paper's §4.1 observation).
    for (int k = 0; k < 4; ++k) {
      const int ns_count = 4 + static_cast<int>(rng_.next_below(5));
      std::vector<net::Ipv4> addrs;
      for (int i = 0; i < ns_count; ++i)
        addrs.push_back(world_.ec2_->allocate_cdn_ip());
      add_fleet(DomainTruth::DnsHosting::kRoute53,
                util::fmt("route53-{}.awsdns.com", k + 1), ns_count, addrs);
    }
    // DNS on EC2 VMs.
    for (int k = 0; k < 4; ++k) {
      const int ns_count = 3 + static_cast<int>(rng_.next_below(4));
      std::vector<net::Ipv4> addrs;
      for (int i = 0; i < ns_count; ++i) {
        addrs.push_back(world_.ec2_
                            ->launch({.account = util::fmt("dnshost-{}", k),
                                      .region = "ec2.us-east-1",
                                      .type = "dns-vm"})
                            .public_ip);
      }
      add_fleet(DomainTruth::DnsHosting::kEc2Vm,
                util::fmt("ec2dns{}.com", k + 1), ns_count, addrs);
    }
    // DNS inside Azure (rare: 22 servers in the paper).
    {
      std::vector<net::Ipv4> addrs;
      for (int i = 0; i < 4; ++i) {
        addrs.push_back(world_.azure_
                            ->launch({.account = "azdns",
                                      .region = "az.us-south",
                                      .type = "dns-vm"})
                            .public_ip);
      }
      add_fleet(DomainTruth::DnsHosting::kAzure, "azuredns.net", 4, addrs);
    }
  }

  const Fleet& pick_fleet(DomainTruth::DnsHosting kind) {
    const auto& pool = fleets_.at(kind);
    return pool[rng_.next_below(pool.size())];
  }

  DomainTruth::DnsHosting pick_dns_hosting() {
    const double u = rng_.uniform01();
    if (u < 0.86) return DomainTruth::DnsHosting::kExternal;
    if (u < 0.95) return DomainTruth::DnsHosting::kRoute53;
    if (u < 0.999) return DomainTruth::DnsHosting::kEc2Vm;
    return DomainTruth::DnsHosting::kAzure;
  }

  // --- deployment helpers ------------------------------------------------
  static std::string continent_of_country(const std::string& country) {
    static const std::map<std::string, std::string> kMap = {
        {"US", "NA"}, {"CA", "NA"}, {"MX", "NA"}, {"BR", "SA"},
        {"GB", "EU"}, {"DE", "EU"}, {"FR", "EU"}, {"ES", "EU"},
        {"IT", "EU"}, {"NL", "EU"}, {"IE", "EU"}, {"RU", "EU"},
        {"CN", "AS"}, {"JP", "AS"}, {"KR", "AS"}, {"IN", "AS"},
        {"SG", "AS"}, {"HK", "AS"}, {"ID", "AS"}, {"AU", "OC"},
    };
    const auto it = kMap.find(country);
    return it == kMap.end() ? "??" : it->second;
  }

  /// Tenants show a mild home bias: with some probability they deploy on
  /// their customers' continent; otherwise the global popularity weights
  /// apply. The blend reproduces both Table 9's skew and the §4.2 finding
  /// that 32% of subdomains sit on the wrong continent anyway.
  std::string pick_region(ProviderKind provider) {
    const auto& provider_obj =
        provider == ProviderKind::kEc2 ? *world_.ec2_ : *world_.azure_;
    if (!customer_continent_.empty() && rng_.chance(0.45)) {
      std::vector<const cloud::Region*> local;
      for (const auto& region : provider_obj.regions())
        if (region.location.continent == customer_continent_)
          local.push_back(&region);
      if (!local.empty())
        return local[rng_.next_below(local.size())]->name;
    }
    std::vector<double> weights;
    if (provider == ProviderKind::kEc2) {
      for (const auto& rw : kEc2RegionWeights) weights.push_back(rw.weight);
      return kEc2RegionWeights[rng_.weighted_pick(weights)].region;
    }
    for (const auto& rw : kAzureRegionWeights) weights.push_back(rw.weight);
    return kAzureRegionWeights[rng_.weighted_pick(weights)].region;
  }

  /// Tenants prefer low zone labels; with identity-biased permutations
  /// this produces the physical-zone skew of Table 14.
  int pick_zone_label(int zone_count) {
    static constexpr double kLabelWeights[] = {0.52, 0.30, 0.18};
    std::vector<double> weights(kLabelWeights,
                                kLabelWeights + std::min(zone_count, 3));
    return static_cast<int>(rng_.weighted_pick(weights));
  }

  /// Launches VM front ends for a subdomain across `zone_count` zones of
  /// one region and installs ground truth + A records.
  void deploy_vms(SubdomainTruth& truth, dns::Zone& zone,
                  const std::string& account, const std::string& region,
                  int vm_count, int want_zones) {
    const auto* region_info = world_.ec2_->region(region);
    const int zones_avail = region_info ? region_info->zone_count : 1;
    want_zones = std::min(want_zones, zones_avail);
    vm_count = std::max(vm_count, want_zones);
    std::vector<int> labels;
    labels.push_back(pick_zone_label(zones_avail));
    while (static_cast<int>(labels.size()) < want_zones) {
      const int label = pick_zone_label(zones_avail);
      if (std::find(labels.begin(), labels.end(), label) == labels.end())
        labels.push_back(label);
    }
    for (int i = 0; i < vm_count; ++i) {
      const int label = labels[static_cast<std::size_t>(i) % labels.size()];
      const auto& vm = world_.ec2_->launch({.account = account,
                                            .region = region,
                                            .zone_label = label,
                                            .type = "m1.medium"});
      truth.front_ips.push_back(vm.public_ip);
      truth.zones.insert(vm.zone);
      zone.add(ResourceRecord::a(truth.name, vm.public_ip));
    }
    if (std::find(truth.regions.begin(), truth.regions.end(), region) ==
        truth.regions.end())
      truth.regions.push_back(region);
  }

  void deploy_elb(SubdomainTruth& truth, dns::Zone& zone,
                  const std::string& account, const std::string& region,
                  int proxy_count) {
    const auto lb = elbs_.create(account, region, proxy_count);
    zone.add(ResourceRecord::cname(truth.name, lb.cname));
    for (const auto ip : lb.proxy_ips) {
      amazonaws_zone_->add(ResourceRecord::a(lb.cname, ip));
      truth.front_ips.push_back(ip);
      if (const auto z = world_.ec2_->zone_of_public_ip(ip))
        truth.zones.insert(*z);
    }
    if (std::find(truth.regions.begin(), truth.regions.end(), region) ==
        truth.regions.end())
      truth.regions.push_back(region);
  }

  void deploy_beanstalk(SubdomainTruth& truth, dns::Zone& zone,
                        const std::string& account,
                        const std::string& region) {
    const auto env = beanstalk_.create(account, region);
    zone.add(ResourceRecord::cname(truth.name, env.cname));
    beanstalk_zone_->add(ResourceRecord::cname(env.cname, env.elb.cname));
    for (const auto ip : env.elb.proxy_ips) {
      amazonaws_zone_->add(ResourceRecord::a(env.elb.cname, ip));
      truth.front_ips.push_back(ip);
      if (const auto z = world_.ec2_->zone_of_public_ip(ip))
        truth.zones.insert(*z);
    }
    truth.regions.push_back(region);
  }

  void deploy_heroku(SubdomainTruth& truth, dns::Zone& zone, bool with_elb,
                     const std::string& account) {
    const std::string region = "ec2.us-east-1";  // Heroku's 2013 home
    if (with_elb) {
      const auto app = heroku_.create(false);
      const auto lb = elbs_.create(account, region, 2);
      zone.add(ResourceRecord::cname(truth.name, app.cname));
      herokuapp_zone_->add(ResourceRecord::cname(app.cname, lb.cname));
      for (const auto ip : lb.proxy_ips) {
        amazonaws_zone_->add(ResourceRecord::a(lb.cname, ip));
        truth.front_ips.push_back(ip);
        if (const auto z = world_.ec2_->zone_of_public_ip(ip))
          truth.zones.insert(*z);
      }
    } else {
      const bool shared = rng_.chance(0.34);
      const auto app = heroku_.create(shared);
      zone.add(ResourceRecord::cname(truth.name, app.cname));
      dns::Zone* target_zone =
          shared ? heroku_zone_ : herokuapp_zone_;
      for (const auto ip : app.ips) {
        // The shared proxy name accumulates A records; tolerate repeats.
        target_zone->add(ResourceRecord::a(app.cname, ip));
        truth.front_ips.push_back(ip);
        if (const auto z = world_.ec2_->zone_of_public_ip(ip))
          truth.zones.insert(*z);
      }
    }
    truth.regions.push_back(region);
  }

  void deploy_cloud_service(SubdomainTruth& truth, dns::Zone& zone,
                            const std::string& account,
                            const std::string& region, bool direct_ip) {
    const auto cs = cloud_services_.create(account, region);
    if (direct_ip) {
      zone.add(ResourceRecord::a(truth.name, cs.ip));
    } else {
      zone.add(ResourceRecord::cname(truth.name, cs.cname));
      cloudapp_zone_->add(ResourceRecord::a(cs.cname, cs.ip));
    }
    truth.front_ips.push_back(cs.ip);
    truth.regions.push_back(region);
  }

  void deploy_traffic_manager(SubdomainTruth& truth, dns::Zone& zone,
                              const std::string& account) {
    std::vector<std::string> regions = {pick_region(ProviderKind::kAzure)};
    if (rng_.chance(0.5)) {
      const auto second = pick_region(ProviderKind::kAzure);
      if (second != regions[0]) regions.push_back(second);
    }
    const auto profile = traffic_manager_.create(account, regions);
    zone.add(ResourceRecord::cname(truth.name, profile.cname));
    // TM balances at the DNS layer: the infra server answers the profile
    // CNAME with a member chosen per client, so distributed lookups (the
    // paper's 200-vantage methodology) observe every member region.
    std::vector<Name> member_cnames;
    for (const auto& member : profile.members)
      member_cnames.push_back(member.cname);
    (*tm_members_)[profile.cname] = std::move(member_cnames);
    for (const auto& member : profile.members) {
      cloudapp_zone_->add(ResourceRecord::a(member.cname, member.ip));
      truth.front_ips.push_back(member.ip);
      if (std::find(truth.regions.begin(), truth.regions.end(),
                    member.region) == truth.regions.end())
        truth.regions.push_back(member.region);
    }
  }

  void deploy_opaque(SubdomainTruth& truth, dns::Zone& zone,
                     const std::string& account, ProviderKind provider,
                     const std::string& region) {
    const Name target = *Name::must_parse("opaq-edge.net")
                             .child(util::fmt("edge{}", opaque_counter_++));
    zone.add(ResourceRecord::cname(truth.name, target));
    net::Ipv4 ip;
    if (provider == ProviderKind::kEc2) {
      const auto& vm = world_.ec2_->launch(
          {.account = account, .region = region, .type = "m1.small"});
      ip = vm.public_ip;
      truth.zones.insert(vm.zone);
    } else {
      ip = world_.azure_
               ->launch({.account = account, .region = region,
                         .type = "cloud-service"})
               .public_ip;
    }
    opaque_zone_->add(ResourceRecord::a(target, ip));
    truth.front_ips.push_back(ip);
    truth.regions.push_back(region);
  }

  void deploy_cloudfront(SubdomainTruth& truth, dns::Zone& zone) {
    const auto dist =
        cloudfront_.create(1 + static_cast<int>(rng_.next_below(3)));
    zone.add(ResourceRecord::cname(truth.name, dist.cname));
    for (const auto ip : dist.edge_ips) {
      cloudfront_zone_->add(ResourceRecord::a(dist.cname, ip));
      truth.front_ips.push_back(ip);
    }
    truth.uses_cloudfront = true;
  }

  void deploy_azure_cdn(SubdomainTruth& truth, dns::Zone& zone) {
    const Name target = *Name::must_parse("msecnd.net")
                             .child(util::fmt("cdn{}", azure_cdn_counter_++));
    zone.add(ResourceRecord::cname(truth.name, target));
    const auto ip = world_.azure_
                        ->launch({.account = "azure-cdn",
                                  .region = "az.us-south",
                                  .type = "cdn-edge"})
                        .public_ip;
    msecnd_zone_->add(ResourceRecord::a(target, ip));
    truth.front_ips.push_back(ip);
    truth.uses_azure_cdn = true;
  }

  // --- domain construction ------------------------------------------------
  std::string pick_subdomain_prefix(std::set<std::string>& used,
                                    bool& discoverable) {
    const auto& words = dns::default_wordlist();
    for (int attempt = 0; attempt < 24; ++attempt) {
      // Zipf over the wordlist keeps www/m/ftp/cdn on top; a 10% tail of
      // unguessable names reproduces the brute-force lower bound.
      if (rng_.chance(0.10)) {
        const auto exotic =
            util::fmt("x{}q{}", rng_.next_below(100000), used.size());
        if (used.insert(exotic).second) {
          discoverable = false;
          return exotic;
        }
        continue;
      }
      const auto idx =
          std::min<std::uint64_t>(rng_.zipf(words.size(), 1.05) - 1,
                                  words.size() - 1);
      if (used.insert(words[idx]).second) {
        discoverable = true;
        return words[idx];
      }
    }
    discoverable = false;
    const auto fallback = util::fmt("deep{}", used.size());
    used.insert(fallback);
    return fallback;
  }

  FrontEnd pick_ec2_front_end() {
    const double u = rng_.uniform01();
    if (u < 0.715) return FrontEnd::kVm;
    if (u < 0.753) return FrontEnd::kElb;
    if (u < 0.7535) return FrontEnd::kBeanstalk;
    if (u < 0.7565) return FrontEnd::kHerokuElb;
    if (u < 0.8385) return FrontEnd::kHeroku;
    return FrontEnd::kOpaqueCname;
  }

  FrontEnd pick_azure_front_end() {
    const double u = rng_.uniform01();
    if (u < 0.70) return FrontEnd::kCloudService;
    if (u < 0.715) return FrontEnd::kTrafficManager;
    return FrontEnd::kOpaqueCname;
  }

  int pick_vm_count() {
    const double u = rng_.uniform01();
    if (u < 0.35) return 1;
    if (u < 0.85) return 2;
    return 3 + static_cast<int>(rng_.next_below(2));
  }

  int pick_zone_spread() {
    const double u = rng_.uniform01();
    if (u < 0.332) return 1;
    if (u < 0.777) return 2;
    return 3;
  }

  int pick_elb_proxies() {
    // 95% of ELB users see <=5 physical proxies; a rare long tail mirrors
    // m.netflix.com's 90.
    if (rng_.chance(0.01)) return 20 + static_cast<int>(rng_.next_below(70));
    return 1 + static_cast<int>(rng_.next_below(5));
  }

  void deploy_cloud_subdomain(SubdomainTruth& truth, dns::Zone& zone,
                              const std::string& account,
                              ProviderKind provider) {
    truth.on_cloud = true;
    truth.provider = provider;
    if (provider == ProviderKind::kEc2) {
      truth.front_end = pick_ec2_front_end();
      const std::string region = pick_region(ProviderKind::kEc2);
      switch (truth.front_end) {
        case FrontEnd::kVm: {
          deploy_vms(truth, zone, account, region, pick_vm_count(),
                     pick_zone_spread());
          // 3% of multi-zone subdomains span a second region.
          if (rng_.chance(0.03)) {
            const auto second = pick_region(ProviderKind::kEc2);
            if (second != region)
              deploy_vms(truth, zone, account, second, 1, 1);
          }
          break;
        }
        case FrontEnd::kElb:
          deploy_elb(truth, zone, account, region, pick_elb_proxies());
          break;
        case FrontEnd::kBeanstalk:
          deploy_beanstalk(truth, zone, account, region);
          break;
        case FrontEnd::kHerokuElb:
          deploy_heroku(truth, zone, /*with_elb=*/true, account);
          break;
        case FrontEnd::kHeroku:
          deploy_heroku(truth, zone, /*with_elb=*/false, account);
          break;
        default:
          deploy_opaque(truth, zone, account, ProviderKind::kEc2, region);
          break;
      }
      // Hybrid: an extra non-cloud A record (the EC2+Other subdomains).
      if (truth.front_end == FrontEnd::kVm && rng_.chance(0.06)) {
        zone.add(ResourceRecord::a(truth.name, other_ip()));
        truth.hybrid = true;
      }
    } else {
      truth.front_end = pick_azure_front_end();
      const std::string region = pick_region(ProviderKind::kAzure);
      switch (truth.front_end) {
        case FrontEnd::kCloudService:
          deploy_cloud_service(truth, zone, account, region,
                               /*direct_ip=*/rng_.chance(0.24));
          break;
        case FrontEnd::kTrafficManager:
          deploy_traffic_manager(truth, zone, account);
          break;
        default:
          deploy_opaque(truth, zone, account, ProviderKind::kAzure, region);
          break;
      }
      if (rng_.chance(0.08)) {
        const auto second = pick_region(ProviderKind::kAzure);
        if (second != truth.regions.front()) {
          const auto cs = cloud_services_.create(account, second);
          // A second-region A record can only coexist with an A-record
          // front end (CNAME owners admit no other data).
          if (zone.add(ResourceRecord::a(truth.name, cs.ip))) {
            truth.front_ips.push_back(cs.ip);
            truth.regions.push_back(second);
          }
        }
      }
    }
  }

  /// Generic (non-marquee) domain.
  DomainTruth make_domain(std::size_t rank, const std::string& name_text) {
    DomainTruth domain;
    domain.rank = rank;
    domain.name = Name::must_parse(name_text);
    domain.customer_country = pick_customer_country();
    customer_continent_ = continent_of_country(domain.customer_country);
    domain.axfr_open = rng_.chance(0.08);
    domain.dns_hosting = pick_dns_hosting();

    const double rank_fraction =
        static_cast<double>(rank) / world_.config_.domain_count;
    const double adoption = std::clamp(
        world_.config_.adoption_scale * 0.04 * (1.55 - 1.1 * rank_fraction),
        0.002, 0.9);
    const bool cloud_using = rng_.chance(adoption);

    // Subdomain count: heavy-tailed with mean ~7.
    int sub_count = 1 + static_cast<int>(std::min(60.0, rng_.pareto(1.0, 1.15)));

    // Provider profile for cloud-using domains (Table 3 shape).
    ProviderKind provider = ProviderKind::kEc2;
    double cloud_fraction = 0.0;
    bool mixed_providers = false;
    if (cloud_using) {
      const double u = rng_.uniform01();
      if (u < 0.081) {  // EC2 only
        cloud_fraction = 1.0;
      } else if (u < 0.942) {  // EC2 + other
        cloud_fraction = 0.15 + 0.6 * rng_.uniform01();
      } else if (u < 0.947) {  // Azure only
        provider = ProviderKind::kAzure;
        cloud_fraction = 1.0;
      } else if (u < 0.993) {  // Azure + other
        provider = ProviderKind::kAzure;
        cloud_fraction = 0.15 + 0.6 * rng_.uniform01();
      } else {  // EC2 + Azure
        mixed_providers = true;
        cloud_fraction = 0.6;
      }
      sub_count = std::max(sub_count, 2);
    }

    const auto fleet_kind = domain.dns_hosting;
    const Fleet& fleet = pick_fleet(fleet_kind);
    auto* zone = host_zone(fleet.server, domain.name, fleet.ns_names,
                           /*glue handled by fleet zone*/ {});
    if (domain.axfr_open) fleet.axfr_open_zones->insert(domain.name);

    std::set<std::string> used_prefixes;
    const std::string account = "tenant-" + name_text;
    int cloud_subs_target =
        cloud_using
            ? std::max(1, static_cast<int>(sub_count * cloud_fraction))
            : 0;
    for (int i = 0; i < sub_count; ++i) {
      SubdomainTruth truth;
      bool discoverable = true;
      const auto prefix = pick_subdomain_prefix(used_prefixes, discoverable);
      truth.name = *domain.name.child(prefix);
      truth.discoverable = discoverable;
      if (i < cloud_subs_target) {
        ProviderKind kind = provider;
        if (mixed_providers)
          kind = rng_.chance(0.5) ? ProviderKind::kEc2 : ProviderKind::kAzure;
        // ~1% of cloud subdomains are pure CDN front ends (P4).
        if (kind == ProviderKind::kEc2 && rng_.chance(0.011)) {
          truth.on_cloud = true;
          truth.provider = kind;
          truth.front_end = FrontEnd::kCdnOnly;
          deploy_cloudfront(truth, *zone);
        } else if (kind == ProviderKind::kAzure && rng_.chance(0.01)) {
          truth.on_cloud = true;
          truth.provider = kind;
          truth.front_end = FrontEnd::kCdnOnly;
          deploy_azure_cdn(truth, *zone);
        } else {
          deploy_cloud_subdomain(truth, *zone, account, kind);
        }
      } else {
        truth.front_end = FrontEnd::kOtherHosting;
        zone->add(ResourceRecord::a(truth.name, other_ip()));
      }
      domain.subdomains.push_back(std::move(truth));
    }
    return domain;
  }

  /// Marquee domain honoring the per-domain tables.
  DomainTruth make_marquee(const MarqueeSpec& spec) {
    DomainTruth domain;
    domain.rank = spec.rank;
    domain.name = Name::must_parse(spec.name);
    domain.customer_country = spec.customer_country;
    customer_continent_ = continent_of_country(domain.customer_country);
    domain.axfr_open = false;
    domain.dns_hosting = DomainTruth::DnsHosting::kExternal;

    const Fleet& fleet = pick_fleet(domain.dns_hosting);
    auto* zone = host_zone(fleet.server, domain.name, fleet.ns_names, {});
    const std::string account = std::string{"tenant-"} + spec.name;

    // Regions: first is the heavy-usage one for the provider.
    std::vector<std::string> regions;
    if (spec.provider == ProviderKind::kEc2) {
      const char* pool[] = {"ec2.us-east-1", "ec2.eu-west-1",
                            "ec2.ap-northeast-1", "ec2.us-west-1",
                            "ec2.us-west-2"};
      for (int i = 0; i < spec.region_count; ++i) regions.push_back(pool[i]);
    } else {
      const char* pool[] = {"az.us-south", "az.us-north", "az.eu-west",
                            "az.us-east", "az.ap-east"};
      for (int i = 0; i < spec.region_count; ++i) regions.push_back(pool[i]);
    }

    // Marquee subdomains must all be wordlist-discoverable: walk the
    // wordlist in order (www, m, ftp, ...) instead of sampling, so even
    // msn.com's 89 subdomains stay enumerable.
    std::set<std::string> used_prefixes;
    std::size_t next_word = 0;
    auto next_prefix = [&]() {
      const auto& words = dns::default_wordlist();
      while (next_word < words.size() &&
             !used_prefixes.insert(words[next_word]).second)
        ++next_word;
      if (next_word < words.size()) return words[next_word++];
      const auto fallback = util::fmt("extra{}", used_prefixes.size());
      used_prefixes.insert(fallback);
      return fallback;
    };
    int remaining_elb_ips = spec.elb_proxy_budget;
    int vm_left = spec.vm_front;
    int elb_left = spec.elb_front;
    int paas_left = spec.paas_front;
    int cdn_left = spec.cdn_subs;
    int k1 = spec.zones_k1, k2 = spec.zones_k2, k3 = spec.zones_k3;

    for (int i = 0; i < spec.cloud_subdomains; ++i) {
      SubdomainTruth truth;
      truth.name = *domain.name.child(next_prefix());
      truth.discoverable = true;  // marquee subdomains are all well-known
      truth.on_cloud = true;
      truth.provider = spec.provider;

      int want_zones = 1;
      if (k3 > 0) {
        want_zones = 3;
        --k3;
      } else if (k2 > 0) {
        want_zones = 2;
        --k2;
      } else if (k1 > 0) {
        --k1;
      }
      const std::string region =
          regions[static_cast<std::size_t>(i) % regions.size()];

      if (spec.provider == ProviderKind::kAzure) {
        truth.front_end = FrontEnd::kCloudService;
        deploy_cloud_service(truth, *zone, account, region,
                             /*direct_ip=*/rng_.chance(0.3));
        // For Azure marquees the k=2 plan means two *regions* (Table 10:
        // 11 of msn.com's subdomains span two regions).
        if (want_zones >= 2 && spec.region_count >= 2 &&
            zone->find(truth.name, dns::RrType::kCname).empty()) {
          const auto& second = regions[(i + 1) % regions.size()];
          if (second != region)
            deploy_cloud_service(truth, *zone, account, second,
                                 /*direct_ip=*/true);
        }
      } else if (paas_left > 0 && elb_left > 0) {
        // PaaS behind ELB (e.g. amazon.com's Beanstalk-like subdomain).
        truth.front_end = FrontEnd::kBeanstalk;
        deploy_beanstalk(truth, *zone, account, region);
        --paas_left;
        --elb_left;
      } else if (elb_left > 0) {
        truth.front_end = FrontEnd::kElb;
        const int proxies = std::max(
            1, remaining_elb_ips / std::max(1, elb_left));
        deploy_elb(truth, *zone, account, region, proxies);
        remaining_elb_ips -= proxies;
        --elb_left;
      } else if (paas_left > 0) {
        truth.front_end = FrontEnd::kHeroku;
        deploy_heroku(truth, *zone, false, account);
        --paas_left;
      } else if (vm_left > 0) {
        truth.front_end = FrontEnd::kVm;
        deploy_vms(truth, *zone, account, region, pick_vm_count(),
                   want_zones);
        --vm_left;
      } else {
        truth.front_end = FrontEnd::kOpaqueCname;
        deploy_opaque(truth, *zone, account, spec.provider, region);
      }
      if (cdn_left > 0 && spec.provider == ProviderKind::kEc2 && i == 0) {
        // The domain's CDN-using subdomain (imdb.com pattern) gets its own
        // name rather than riding on a front end.
        SubdomainTruth cdn;
        cdn.name = *domain.name.child(next_prefix());
        cdn.discoverable = true;
        cdn.on_cloud = true;
        cdn.provider = spec.provider;
        cdn.front_end = FrontEnd::kCdnOnly;
        deploy_cloudfront(cdn, *zone);
        domain.subdomains.push_back(std::move(cdn));
        --cdn_left;
      }
      domain.subdomains.push_back(std::move(truth));
    }
    // Plus a few non-cloud subdomains so the domain reads EC2+Other.
    for (int i = 0; i < 3; ++i) {
      SubdomainTruth other;
      other.name = *domain.name.child(next_prefix());
      other.discoverable = true;
      other.front_end = FrontEnd::kOtherHosting;
      zone->add(ResourceRecord::a(other.name, other_ip()));
      domain.subdomains.push_back(std::move(other));
    }
    return domain;
  }

  std::string pick_customer_country() {
    std::vector<double> weights;
    for (const auto& cw : kCustomerCountries) weights.push_back(cw.weight);
    return kCustomerCountries[rng_.weighted_pick(weights)].country;
  }

  void plant_domains() {
    std::map<std::size_t, const MarqueeSpec*> marquees;
    if (world_.config_.plant_marquee_domains) {
      for (const auto& spec : kMarquees)
        if (spec.rank <= world_.config_.domain_count)
          marquees[spec.rank] = &spec;
    }
    world_.domains_.reserve(world_.config_.domain_count);
    for (std::size_t rank = 1; rank <= world_.config_.domain_count; ++rank) {
      if (const auto it = marquees.find(rank); it != marquees.end()) {
        world_.domains_.push_back(make_marquee(*it->second));
        continue;
      }
      const char* tld = kTlds[rng_.weighted_pick(
          std::span<const double>{kTldWeights, std::size(kTldWeights)})];
      world_.domains_.push_back(
          make_domain(rank, util::fmt("w{}site.{}", rank, tld)));
    }
  }

  void index_subdomains() {
    auto& index = world_.subdomain_index_;
    std::size_t total = 0;
    for (const auto& domain : world_.domains_) total += domain.subdomains.size();
    index.clear();
    index.reserve(total);
    for (std::size_t d = 0; d < world_.domains_.size(); ++d) {
      const auto& domain = world_.domains_[d];
      for (std::size_t s = 0; s < domain.subdomains.size(); ++s)
        index.emplace_back(static_cast<std::uint32_t>(d),
                           static_cast<std::uint32_t>(s));
    }
    const auto name_of =
        [this](const std::pair<std::uint32_t, std::uint32_t>& e)
        -> const dns::Name& {
      return world_.domains_[e.first].subdomains[e.second].name;
    };
    // Stable sort + keep-last dedup reproduces the old map semantics
    // exactly: if a name was ever inserted twice, the later (d, s) won.
    std::stable_sort(index.begin(), index.end(),
                     [&](const auto& a, const auto& b) {
                       return dns::Name::canonical_less(name_of(a),
                                                        name_of(b));
                     });
    std::size_t kept = 0;
    for (std::size_t i = 0; i < index.size(); ++i) {
      const bool last_of_run =
          i + 1 == index.size() ||
          dns::Name::canonical_less(name_of(index[i]), name_of(index[i + 1]));
      if (last_of_run) index[kept++] = index[i];
    }
    index.resize(kept);

    auto& by_name = world_.domain_index_;
    by_name.resize(world_.domains_.size());
    for (std::size_t d = 0; d < by_name.size(); ++d)
      by_name[d] = static_cast<std::uint32_t>(d);
    std::sort(by_name.begin(), by_name.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return dns::Name::canonical_less(world_.domains_[a].name,
                                                 world_.domains_[b].name);
              });
  }

  World& world_;
  util::Rng rng_;

  cloud::ElbManager elbs_;
  cloud::HerokuManager heroku_;
  cloud::BeanstalkManager beanstalk_;
  cloud::CloudFrontManager cloudfront_;
  cloud::CloudServiceManager cloud_services_;
  cloud::TrafficManagerManager traffic_manager_;

  std::shared_ptr<dns::AuthoritativeServer> root_server_;
  dns::Zone* root_zone_ = nullptr;
  std::map<std::string, std::shared_ptr<dns::AuthoritativeServer>>
      tld_servers_;
  std::map<std::string, dns::Zone*> tld_zones_;

  std::shared_ptr<dns::AuthoritativeServer> infra_server_;
  dns::Zone* amazonaws_zone_ = nullptr;
  dns::Zone* beanstalk_zone_ = nullptr;
  dns::Zone* heroku_zone_ = nullptr;
  dns::Zone* herokuapp_zone_ = nullptr;
  dns::Zone* cloudfront_zone_ = nullptr;
  dns::Zone* cloudapp_zone_ = nullptr;
  dns::Zone* tm_zone_ = nullptr;
  dns::Zone* msecnd_zone_ = nullptr;
  dns::Zone* opaque_zone_ = nullptr;

  std::map<DomainTruth::DnsHosting, std::vector<Fleet>> fleets_;
  std::shared_ptr<std::map<Name, std::vector<Name>>> tm_members_;

  std::string customer_continent_;
  std::uint32_t other_counter_ = 1;
  std::uint32_t infra_counter_ = 1;
  std::uint64_t opaque_counter_ = 1;
  std::uint64_t azure_cdn_counter_ = 1;
};

World::World(WorldConfig config) : config_(config) {
  obs::Span span{"synth.world.build"};
  ec2_ = std::make_unique<cloud::Provider>(
      cloud::Provider::make_ec2(config.seed ^ 0xEC2));
  azure_ = std::make_unique<cloud::Provider>(
      cloud::Provider::make_azure(config.seed ^ 0xA2));
  Builder{*this}.build();
  obs::counter("synth.world.builds").inc();
  obs::counter("synth.world.domains").inc(domains_.size());
  obs::log_debug("synth.world", "built world: {} domains, seed {}",
                 domains_.size(), config.seed);
}

const DomainTruth* World::domain(std::string_view name) const {
  const auto parsed = dns::Name::parse(name);
  if (!parsed) return nullptr;
  const auto it = std::lower_bound(
      domain_index_.begin(), domain_index_.end(), *parsed,
      [&](std::uint32_t d, const dns::Name& n) {
        return dns::Name::canonical_less(domains_[d].name, n);
      });
  if (it == domain_index_.end() || !(domains_[*it].name == *parsed))
    return nullptr;
  return &domains_[*it];
}

dns::Resolver World::make_resolver(net::Ipv4 client_address) const {
  dns::Resolver::Options options;
  options.root_servers = root_servers_;
  options.client_address = client_address;
  dns::DnsTransport& transport =
      transport_override_ ? *transport_override_ : network_;
  return dns::Resolver{transport, options};
}

const SubdomainTruth* World::subdomain_truth(const dns::Name& name) const {
  const auto it = std::lower_bound(
      subdomain_index_.begin(), subdomain_index_.end(), name,
      [&](const std::pair<std::uint32_t, std::uint32_t>& e,
          const dns::Name& n) {
        return dns::Name::canonical_less(
            domains_[e.first].subdomains[e.second].name, n);
      });
  if (it == subdomain_index_.end()) return nullptr;
  const SubdomainTruth& truth = domains_[it->first].subdomains[it->second];
  return truth.name == name ? &truth : nullptr;
}

std::vector<const SubdomainTruth*> World::cloud_subdomains() const {
  std::vector<const SubdomainTruth*> out;
  for (const auto& d : domains_)
    for (const auto& s : d.subdomains)
      if (s.on_cloud) out.push_back(&s);
  return out;
}

}  // namespace cs::synth
