#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pcap/packet.h"
#include "synth/world.h"

/// Synthesizes the campus packet capture of §2.1/§3: one week of
/// university-initiated traffic to EC2 and Azure, written as real
/// Ethernet/IP/TCP/UDP/ICMP packets (HTTP messages and TLS handshakes
/// included) so the analysis pipeline decodes it exactly as Bro did.
///
/// Calibration targets (relative shape, scaled to `total_web_bytes`):
///  - Table 1: EC2 81.7% / Azure 18.3% of bytes;
///  - Table 2: per-cloud protocol mix (EC2 HTTPS-heavy, Azure HTTP-heavy,
///    Azure's UDP flow bulge);
///  - Table 5: Dropbox-like HTTPS elephant at ~68% of web bytes plus the
///    named top-15 per cloud;
///  - Table 6: content-type mix by Content-Length;
///  - Figure 3: heavy-tailed flow counts/sizes, HTTPS flows larger than
///    HTTP flows.
///
/// Emitted wire bytes per flow are capped (huge objects carry a truncated
/// body while Content-Length reports the logical size), so absolute GB
/// differ from the paper's 1.4 TB but every share and distribution shape
/// is preserved. See DESIGN.md for this substitution's rationale.
namespace cs::synth {

struct TrafficConfig {
  std::uint64_t seed = 77;
  /// Capture start: Tue Jun 26 2012 00:00 UTC, as in the paper.
  double start_time = 1340668800.0;
  double duration_sec = 7 * 86400.0;
  /// Total HTTP+HTTPS wire bytes to emit across both clouds.
  std::uint64_t total_web_bytes = 48ull * 1024 * 1024;
  /// Per-flow cap on emitted response payload (keeps packet counts sane).
  std::size_t emitted_flow_cap = 256 * 1024;
};

/// A cloud-hosted traffic endpoint the generator can aim flows at.
struct TrafficEndpoint {
  std::string domain;    ///< registered domain ("dropbox.com")
  std::string hostname;  ///< Host header / SNI ("client1.dropbox.com")
  std::string cert_cn;   ///< certificate CN ("*.dropbox.com")
  net::Ipv4 ip;
  cloud::ProviderKind provider = cloud::ProviderKind::kEc2;
  bool in_alexa = false;  ///< whether the domain exists in the World
};

class TrafficGenerator {
 public:
  /// May launch extra instances in the world's providers for the paper's
  /// named heavy-hitter tenants (dropbox.com, atdmt.com, ...).
  TrafficGenerator(World& world, TrafficConfig config);

  /// Generates the full capture, sorted by timestamp.
  std::vector<pcap::Packet> generate();

  /// Streaming generation for the paper-scale pipeline: delivers the
  /// capture as a sequence of independently timestamp-sorted units (each
  /// web endpoint's flows, then both clouds' non-web flows as one final
  /// unit). Every canonical five-tuple lives inside exactly one unit —
  /// each endpoint owns a freshly launched server IP, and the non-web
  /// unit's servers are disjoint from the web ports — so feeding units in
  /// order to a pcap::FlowAssembler produces byte-identical flows to
  /// assemble_flows(generate()) while only ever holding a bounded window
  /// of packets (pinned by synth_traffic_test). Returns the total packet
  /// count.
  std::size_t generate_units(
      const std::function<void(std::vector<pcap::Packet>&&)>& sink);

  /// Writes straight to a pcap file.
  void generate_to_file(const std::string& path);

  /// The endpoints the generator aims at (exposed for tests).
  const std::vector<TrafficEndpoint>& endpoints() const noexcept {
    return endpoints_;
  }

 private:
  void setup_endpoints();
  TrafficEndpoint make_endpoint(const std::string& domain,
                                const std::string& host_prefix,
                                cloud::ProviderKind provider,
                                const std::string& region, bool in_alexa);

  World& world_;
  TrafficConfig config_;
  std::vector<TrafficEndpoint> endpoints_;
  /// Parallel to endpoints_: target share of total web bytes.
  std::vector<double> byte_shares_;
  /// Whether the endpoint's flows are HTTPS (vs HTTP).
  std::vector<bool> https_;
};

}  // namespace cs::synth
