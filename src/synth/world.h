#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloud/features.h"
#include "cloud/provider.h"
#include "dns/resolver.h"
#include "dns/transport.h"

/// The synthetic Internet the study measures.
///
/// World builds, from one seed, everything the paper's pipeline needs:
///  - EC2 + Azure providers with instances backing every deployment,
///  - a ranked domain universe (the Alexa-top-N stand-in) whose cloud
///    adoption, provider mix, front-end patterns, region/zone usage, CDN
///    and DNS-hosting choices follow the marginals reported in §3-4,
///  - a complete DNS delegation tree (root -> TLDs -> domain zones ->
///    infrastructure zones like elb.amazonaws.com, herokuapp.com,
///    cloudfront.net, cloudapp.net, trafficmanager.net, msecnd.net)
///    served by in-process authoritative servers over the wire codec,
///  - ground truth for every subdomain, so estimators can be scored.
///
/// The "marquee" domains of the paper's Tables 4/8/10/15 (amazon.com,
/// pinterest.com, live.com, ...) are planted at their Alexa ranks with
/// their reported deployment shapes.
namespace cs::synth {

/// Front-end deployment pattern (ground truth, superset of Figure 1).
enum class FrontEnd {
  kVm,            ///< P1: A record(s) pointing at VM instances
  kElb,           ///< P2: CNAME to *.elb.amazonaws.com
  kBeanstalk,     ///< P3 via Beanstalk (always fronts an ELB)
  kHerokuElb,     ///< Heroku app behind an ELB
  kHeroku,        ///< Heroku shared proxy fleet (no ELB)
  kCloudService,  ///< Azure CS (direct IP or *.cloudapp.net CNAME)
  kTrafficManager,  ///< Azure TM CNAME chain
  kOpaqueCname,   ///< cloud-hosted behind a CNAME none of the heuristics
                  ///< recognize (the paper's unclassified 16% / 30%)
  kCdnOnly,       ///< P4: the subdomain is entirely CDN-fronted
  kOtherHosting,  ///< not on EC2/Azure at all
};

std::string to_string(FrontEnd front_end);

struct SubdomainTruth {
  dns::Name name;
  FrontEnd front_end = FrontEnd::kOtherHosting;
  /// Cloud the front end runs on (meaningless for kOtherHosting).
  cloud::ProviderKind provider = cloud::ProviderKind::kEc2;
  bool on_cloud = false;
  bool hybrid = false;  ///< also has a non-cloud A record (EC2+Other)
  std::vector<std::string> regions;  ///< deployed regions (usually one)
  std::set<int> zones;               ///< physical zones (EC2 only)
  /// Public front-end addresses (VM/proxy/CS IPs) for this subdomain.
  std::vector<net::Ipv4> front_ips;
  bool uses_cloudfront = false;
  bool uses_azure_cdn = false;
  bool discoverable = true;  ///< false = not on any wordlist (AXFR-only)
};

struct DomainTruth {
  dns::Name name;
  std::size_t rank = 0;  ///< 1-based Alexa-style rank
  std::string customer_country;  ///< where most clients are (AWIS stand-in)
  bool axfr_open = false;
  /// Name-server fleet classification for §4.1's DNS-server analysis.
  enum class DnsHosting { kExternal, kRoute53, kEc2Vm, kAzure };
  DnsHosting dns_hosting = DnsHosting::kExternal;
  std::vector<SubdomainTruth> subdomains;

  bool cloud_using() const {
    for (const auto& s : subdomains)
      if (s.on_cloud) return true;
    return false;
  }
};

struct WorldConfig {
  std::uint64_t seed = 2013;
  /// Size of the ranked universe (the paper's was 1M; default scales it
  /// down while preserving every marginal).
  std::size_t domain_count = 4000;
  /// Multiplier on the paper's ~4% cloud-adoption rate so small universes
  /// still contain enough cloud-using domains to analyze.
  double adoption_scale = 2.0;
  /// Insert the paper's named top domains at their real ranks.
  bool plant_marquee_domains = true;
};

class World {
 public:
  explicit World(WorldConfig config);

  const WorldConfig& config() const noexcept { return config_; }
  const std::vector<DomainTruth>& domains() const noexcept { return domains_; }
  const DomainTruth* domain(std::string_view name) const;

  cloud::Provider& ec2() noexcept { return *ec2_; }
  const cloud::Provider& ec2() const noexcept { return *ec2_; }
  cloud::Provider& azure() noexcept { return *azure_; }
  const cloud::Provider& azure() const noexcept { return *azure_; }

  dns::SimulatedDnsNetwork& network() noexcept { return network_; }
  const std::vector<net::Ipv4>& root_servers() const noexcept {
    return root_servers_;
  }

  /// A resolver wired to this world's DNS (fresh cache each call).
  dns::Resolver make_resolver(net::Ipv4 client_address) const;

  /// Routes every future make_resolver() over `transport` instead of the
  /// in-process network — the single hook the live-socket backend
  /// (CS_TRANSPORT=socket) uses to carry resolver traffic over real UDP.
  /// The pointee must outlive the resolvers; nullptr restores the
  /// default. Build-phase only (same contract as the network mutators).
  void set_transport_override(dns::DnsTransport* transport) noexcept {
    transport_override_ = transport;
  }
  dns::DnsTransport* transport_override() const noexcept {
    return transport_override_;
  }

  /// Ground-truth lookup for scoring: the truth record of a subdomain.
  const SubdomainTruth* subdomain_truth(const dns::Name& name) const;

  /// All cloud-using subdomains (truth view).
  std::vector<const SubdomainTruth*> cloud_subdomains() const;

 private:
  class Builder;

  WorldConfig config_;
  std::unique_ptr<cloud::Provider> ec2_;
  std::unique_ptr<cloud::Provider> azure_;
  mutable dns::SimulatedDnsNetwork network_;
  dns::DnsTransport* transport_override_ = nullptr;
  std::vector<net::Ipv4> root_servers_;
  std::vector<DomainTruth> domains_;
  /// Flat subdomain index, sorted by the subdomain's canonical name and
  /// binary-searched by subdomain_truth(). Entries reference names in
  /// domains_ rather than copying them; at the paper's 34M subdomains a
  /// node-based map spent more memory on nodes than on the zone data.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> subdomain_index_;
  /// Domain positions sorted by canonical name, for domain() lookups
  /// (domains_ itself stays in rank order).
  std::vector<std::uint32_t> domain_index_;
};

}  // namespace cs::synth
