#include "synth/traffic.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "exec/config.h"
#include "exec/parallel.h"
#include "exec/sharded_rng.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcap/decode.h"
#include "pcap/file.h"
#include "proto/http.h"
#include "proto/tls.h"
#include "util/format.h"
#include "util/rng.h"

namespace cs::synth {
namespace {

using cloud::ProviderKind;

/// Table 5's named tenants with their share of total HTTP(S) bytes and
/// the protocol their traffic rides on.
struct HeavyHitter {
  const char* domain;
  const char* host_prefix;
  double share_percent;
  ProviderKind provider;
  bool https;
  const char* region;
};

constexpr HeavyHitter kHeavyHitters[] = {
    // EC2 top 15.
    {"dropbox.com", "client1", 68.21, ProviderKind::kEc2, true,
     "ec2.us-east-1"},
    {"netflix.com", "movies", 1.70, ProviderKind::kEc2, false,
     "ec2.us-east-1"},
    {"truste.com", "consent", 1.06, ProviderKind::kEc2, false,
     "ec2.us-east-1"},
    {"channel3000.com", "www", 0.74, ProviderKind::kEc2, false,
     "ec2.us-east-1"},
    {"pinterest.com", "www", 0.59, ProviderKind::kEc2, false,
     "ec2.us-east-1"},
    {"adsafeprotected.com", "pixel", 0.53, ProviderKind::kEc2, false,
     "ec2.us-east-1"},
    {"zynga.com", "games", 0.44, ProviderKind::kEc2, false, "ec2.us-east-1"},
    {"sharefile.com", "files", 0.42, ProviderKind::kEc2, true,
     "ec2.us-east-1"},
    {"zoolz.com", "backup", 0.36, ProviderKind::kEc2, true, "ec2.us-east-1"},
    {"echoenabled.com", "api", 0.31, ProviderKind::kEc2, false,
     "ec2.us-east-1"},
    {"vimeo.com", "player", 0.26, ProviderKind::kEc2, false,
     "ec2.us-east-1"},
    {"foursquare.com", "api", 0.25, ProviderKind::kEc2, true,
     "ec2.us-east-1"},
    {"sourcefire.com", "updates", 0.22, ProviderKind::kEc2, true,
     "ec2.us-east-1"},
    {"instagram.com", "photos", 0.17, ProviderKind::kEc2, true,
     "ec2.us-east-1"},
    {"copperegg.com", "metrics", 0.17, ProviderKind::kEc2, false,
     "ec2.us-east-1"},
    // Azure top 15.
    {"atdmt.com", "ads", 3.10, ProviderKind::kAzure, false, "az.us-south"},
    {"msn.com", "www", 2.39, ProviderKind::kAzure, false, "az.us-south"},
    {"microsoft.com", "download", 2.26, ProviderKind::kAzure, false,
     "az.us-north"},
    {"msecnd.net", "cdn1", 1.55, ProviderKind::kAzure, false, "az.us-south"},
    {"s-msn.com", "static", 1.43, ProviderKind::kAzure, false,
     "az.us-south"},
    {"live.com", "login", 1.35, ProviderKind::kAzure, true, "az.us-north"},
    {"virtualearth.net", "tiles", 1.06, ProviderKind::kAzure, false,
     "az.us-south"},
    {"dreamspark.com", "www", 0.81, ProviderKind::kAzure, true,
     "az.us-north"},
    {"hotmail.com", "mail", 0.72, ProviderKind::kAzure, true, "az.us-south"},
    {"mesh.com", "sync", 0.52, ProviderKind::kAzure, true, "az.us-south"},
    {"wonderwall.com", "www", 0.36, ProviderKind::kAzure, false,
     "az.us-south"},
    {"msads.net", "serve", 0.29, ProviderKind::kAzure, false, "az.us-south"},
    {"aspnetcdn.com", "ajax", 0.26, ProviderKind::kAzure, false,
     "az.us-north"},
    {"windowsphone.com", "store", 0.23, ProviderKind::kAzure, true,
     "az.us-south"},
    {"windowsphone-int.com", "dev", 0.23, ProviderKind::kAzure, true,
     "az.us-south"},
};

/// Table 6 content-type plan: byte share (%), mean object KB.
struct ContentPlan {
  const char* type;
  double byte_share;
  double mean_kb;
};
constexpr ContentPlan kContentPlans[] = {
    {"text/html", 24.10, 16.0},
    {"text/plain", 23.37, 5.0},
    {"image/jpeg", 10.64, 20.0},
    {"application/x-shockwave-flash", 8.66, 36.0},
    {"application/octet-stream", 7.85, 29.0},
    {"application/pdf", 3.15, 656.0},
    {"text/xml", 3.10, 5.0},
    {"image/png", 2.94, 6.0},
    {"application/zip", 2.81, 1664.0},
    {"video/mp4", 2.21, 6578.0},
    {"application/javascript", 4.20, 10.0},
    {"text/css", 3.00, 8.0},
    {"image/gif", 3.97, 4.0},
};

constexpr double kMss = 1400.0;

}  // namespace

TrafficGenerator::TrafficGenerator(World& world, TrafficConfig config)
    : world_(world), config_(config) {
  setup_endpoints();
}

TrafficEndpoint TrafficGenerator::make_endpoint(const std::string& domain,
                                                const std::string& host_prefix,
                                                ProviderKind provider,
                                                const std::string& region,
                                                bool in_alexa) {
  TrafficEndpoint ep;
  ep.domain = domain;
  ep.hostname = host_prefix + "." + domain;
  ep.cert_cn = "*." + domain;
  ep.provider = provider;
  ep.in_alexa = in_alexa;
  auto& cloud =
      provider == ProviderKind::kEc2 ? world_.ec2() : world_.azure();
  ep.ip = cloud
              .launch({.account = "traffic-" + domain,
                       .region = region,
                       .type = "web-server"})
              .public_ip;
  return ep;
}

void TrafficGenerator::setup_endpoints() {
  double named_total = 0.0;
  for (const auto& hh : kHeavyHitters) {
    const bool in_alexa = world_.domain(hh.domain) != nullptr;
    endpoints_.push_back(make_endpoint(hh.domain, hh.host_prefix,
                                       hh.provider, hh.region, in_alexa));
    byte_shares_.push_back(hh.share_percent / 100.0);
    https_.push_back(hh.https);
    named_total += hh.share_percent / 100.0;
  }

  // Tail: EC2 gets ~6.4% of bytes, Azure ~1.7%, split zipf-style between
  // (a) cloud-using Alexa domains from the world and (b) domains only seen
  // at this vantage (the paper found half its capture domains outside the
  // Alexa top million).
  util::Rng rng{config_.seed ^ 0x7A11ULL};
  struct TailPlan {
    ProviderKind provider;
    double total_share;
    const char* region;
  };
  const TailPlan plans[] = {{ProviderKind::kEc2, 0.064, "ec2.us-east-1"},
                            {ProviderKind::kAzure, 0.017, "az.us-south"}};
  // Candidate Alexa cloud domains.
  std::vector<std::string> alexa_candidates;
  for (const auto& d : world_.domains())
    if (d.cloud_using()) alexa_candidates.push_back(d.name.to_string());

  for (const auto& plan : plans) {
    constexpr int kTailCount = 30;
    double weight_sum = 0.0;
    std::vector<double> weights;
    for (int i = 0; i < kTailCount; ++i) {
      weights.push_back(1.0 / (i + 2.0));
      weight_sum += weights.back();
    }
    for (int i = 0; i < kTailCount; ++i) {
      std::string domain;
      bool in_alexa = false;
      if (i % 2 == 0 && !alexa_candidates.empty()) {
        domain = alexa_candidates[rng.next_below(alexa_candidates.size())];
        in_alexa = true;
      } else {
        domain = util::fmt(
            "uonly{}{}.com", plan.provider == ProviderKind::kEc2 ? "e" : "a",
            i);
      }
      endpoints_.push_back(make_endpoint(domain, "www", plan.provider,
                                         plan.region, in_alexa));
      byte_shares_.push_back(plan.total_share * weights[i] / weight_sum);
      // Azure tail skews HTTPS to lift the cloud's HTTPS byte share
      // toward Table 2's 37%.
      https_.push_back(plan.provider == ProviderKind::kAzure
                           ? rng.chance(0.8)
                           : rng.chance(0.3));
    }
  }
  (void)named_total;
}

std::size_t TrafficGenerator::generate_units(
    const std::function<void(std::vector<pcap::Packet>&&)>& sink) {
  obs::Span span{"synth.traffic.generate"};
  // Every parallel unit of work (one endpoint's flows, one cloud's
  // non-web flows) draws from its own deterministic RNG stream, so the
  // merged capture is byte-identical at every CS_THREADS value.
  const exec::ShardedRng shards{config_.seed};

  auto university_client = [](util::Rng& rng) {
    return net::Endpoint{
        net::Ipv4{128, 104, static_cast<std::uint8_t>(rng.next_below(256)),
                  static_cast<std::uint8_t>(1 + rng.next_below(250))},
        static_cast<std::uint16_t>(32768 + rng.next_below(28000))};
  };

  // Content-type pick weights by flow count: byte share / mean size.
  std::vector<double> content_weights;
  for (const auto& plan : kContentPlans)
    content_weights.push_back(plan.byte_share / plan.mean_kb);

  auto emit_http_flow = [&](util::Rng& rng, std::vector<pcap::Packet>& packets,
                            const TrafficEndpoint& ep, double start,
                            std::uint64_t& emitted, std::uint64_t budget) {
    const net::Endpoint client = university_client(rng);
    const net::Endpoint server{ep.ip, 80};
    double t = start;
    std::uint32_t seq = rng()  % 100000;
    packets.push_back(pcap::make_tcp_packet(t, client, server,
                                            {.syn = true}, seq, {}));
    t += 0.04;
    packets.push_back(pcap::make_tcp_packet(t, server, client,
                                            {.syn = true, .ack = true}, 0,
                                            {}));
    t += 0.04;
    const auto request =
        proto::build_request("GET", ep.hostname, "/index.html");
    packets.push_back(pcap::make_tcp_packet(
        t, client, server, {.ack = true, .psh = true}, seq + 1, request));
    emitted += 54 + request.size();

    const auto& plan =
        kContentPlans[rng.weighted_pick(content_weights)];
    // Content-Length: lognormal with the plan's mean.
    const double sigma = 1.0;
    const double mu = std::log(plan.mean_kb * 1024.0) - sigma * sigma / 2.0;
    const auto content_length =
        static_cast<std::uint64_t>(std::max(64.0, rng.lognormal(mu, sigma)));
    // Emitted body is much smaller than the logical object (the capture's
    // HTTP flows are short; Figure 3c medians ~2 KB on EC2). Azure's HTTP
    // flows run larger, which is what gives EC2 its 80% flow share.
    const double emit_median =
        ep.provider == ProviderKind::kEc2 ? 0.5 * 1024 : 5.5 * 1024;
    const double emit_sigma = ep.provider == ProviderKind::kEc2 ? 0.9 : 1.2;
    std::uint64_t emit_cap = static_cast<std::uint64_t>(
        rng.lognormal(std::log(emit_median), emit_sigma));
    emit_cap = std::min<std::uint64_t>(emit_cap, config_.emitted_flow_cap);
    if (budget > emitted)
      emit_cap = std::min(emit_cap, (budget - emitted) + 2048);
    const auto response = proto::build_response(
        200, plan.type, content_length,
        static_cast<std::size_t>(std::min(emit_cap, content_length)));
    // Chunk the response into MSS-sized segments.
    std::size_t offset = 0;
    std::uint32_t server_seq = 1;
    while (offset < response.size()) {
      const std::size_t take =
          std::min<std::size_t>(static_cast<std::size_t>(kMss),
                                response.size() - offset);
      t += 0.002 + rng.exponential(50.0);
      packets.push_back(pcap::make_tcp_packet(
          t, server, client, {.ack = true, .psh = true}, server_seq,
          std::span<const std::uint8_t>{response.data() + offset, take}));
      offset += take;
      server_seq += static_cast<std::uint32_t>(take);
      emitted += 54 + take;
    }
    t += 0.02;
    packets.push_back(pcap::make_tcp_packet(t, client, server,
                                            {.ack = true, .fin = true},
                                            seq + 2, {}));
    emitted += 54 * 2;
  };

  auto emit_https_flow = [&](util::Rng& rng,
                             std::vector<pcap::Packet>& packets,
                             const TrafficEndpoint& ep, bool elephant,
                             double start, std::uint64_t& emitted,
                             std::uint64_t budget) {
    const net::Endpoint client = university_client(rng);
    const net::Endpoint server{ep.ip, 443};
    double t = start;
    std::uint32_t seq = rng() % 100000;
    packets.push_back(pcap::make_tcp_packet(t, client, server,
                                            {.syn = true}, seq, {}));
    t += 0.04;
    packets.push_back(pcap::make_tcp_packet(t, server, client,
                                            {.syn = true, .ack = true}, 0,
                                            {}));
    t += 0.04;
    const auto hello = proto::build_client_hello(ep.hostname);
    packets.push_back(pcap::make_tcp_packet(
        t, client, server, {.ack = true, .psh = true}, seq + 1, hello));
    t += 0.05;
    const auto cert = proto::build_certificate(ep.cert_cn);
    packets.push_back(pcap::make_tcp_packet(
        t, server, client, {.ack = true, .psh = true}, 1, cert));
    emitted += 108 + hello.size() + cert.size();

    // Encrypted application bytes: elephants (storage services) push to
    // the cap; ordinary HTTPS flows are ~10 KB median.
    const double median = elephant ? 15.0 * 1024 : 12.0 * 1024;
    const double sigma = elephant ? 2.0 : 1.5;
    double want = rng.lognormal(std::log(median), sigma);
    want = std::min(want, static_cast<double>(config_.emitted_flow_cap));
    if (budget > emitted)
      want = std::min(want, static_cast<double>(budget - emitted) + 4096);
    std::size_t remaining = static_cast<std::size_t>(want);
    std::vector<std::uint8_t> chunk(static_cast<std::size_t>(kMss), 0x5A);
    std::uint32_t server_seq = 1000;
    // Long-lived storage sessions: stretch gaps (still under the flow
    // table's idle timeout).
    const double gap_scale = elephant && rng.chance(0.1) ? 60.0 : 1.0;
    while (remaining > 0) {
      const std::size_t take =
          std::min(chunk.size(), remaining);
      t += (0.002 + rng.exponential(80.0)) * gap_scale;
      packets.push_back(pcap::make_tcp_packet(
          t, server, client, {.ack = true, .psh = true}, server_seq,
          std::span<const std::uint8_t>{chunk.data(), take}));
      remaining -= take;
      server_seq += static_cast<std::uint32_t>(take);
      emitted += 54 + take;
    }
    t += 0.02;
    packets.push_back(pcap::make_tcp_packet(t, client, server,
                                            {.ack = true, .fin = true},
                                            seq + 2, {}));
    emitted += 54 * 2;
  };

  const auto by_timestamp = [](const pcap::Packet& a, const pcap::Packet& b) {
    return a.timestamp < b.timestamp;
  };

  // --- Web traffic by byte budget -------------------------------------
  // One task per endpoint: endpoint i draws from RNG stream i and emits
  // into its own packet vector. Endpoints run in windows of a few pool
  // widths so only a window's packets are ever in memory, but every byte
  // depends solely on the endpoint's global stream index, and units reach
  // the sink in endpoint order regardless of the window size.
  struct EndpointTraffic {
    std::vector<pcap::Packet> packets;
    std::size_t flows = 0;
  };
  std::size_t ec2_web_flows = 0, azure_web_flows = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t total_wire_bytes = 0;
  auto deliver = [&](std::vector<pcap::Packet>&& unit) {
    total_packets += unit.size();
    for (const auto& p : unit) total_wire_bytes += p.data.size();
    sink(std::move(unit));
  };

  const std::size_t window =
      std::max<std::size_t>(2 * exec::thread_count(), 1);
  for (std::size_t base = 0; base < endpoints_.size(); base += window) {
    const std::size_t count = std::min(window, endpoints_.size() - base);
    auto per_endpoint = exec::parallel_map(
        count,
        [&](std::size_t offset) {
          obs::Span ep_span{"synth.traffic.endpoint"};
          const std::size_t i = base + offset;
          EndpointTraffic out;
          util::Rng rng = shards.stream(i);
          const auto& ep = endpoints_[i];
          const auto budget = static_cast<std::uint64_t>(
              byte_shares_[i] * static_cast<double>(config_.total_web_bytes));
          const bool elephant = byte_shares_[i] > 0.05;
          std::uint64_t emitted = 0;
          while (emitted < budget) {
            const double start =
                config_.start_time + rng.uniform01() * config_.duration_sec;
            if (https_[i])
              emit_https_flow(rng, out.packets, ep, elephant, start, emitted,
                              budget);
            else
              emit_http_flow(rng, out.packets, ep, start, emitted, budget);
            ++out.flows;
          }
          // Sorted inside the task so the per-unit ordering work runs in
          // parallel. Stable: equal timestamps keep emission order, which
          // is what lets generate()'s global stable_sort reproduce the
          // pre-streaming capture byte for byte.
          std::stable_sort(out.packets.begin(), out.packets.end(),
                           by_timestamp);
          return out;
        },
        /*grain=*/1);
    for (std::size_t offset = 0; offset < per_endpoint.size(); ++offset) {
      if (endpoints_[base + offset].provider == ProviderKind::kEc2)
        ec2_web_flows += per_endpoint[offset].flows;
      else
        azure_web_flows += per_endpoint[offset].flows;
      deliver(std::move(per_endpoint[offset].packets));
    }
  }

  // --- Non-web flows by count (Table 2 flow mix) -----------------------
  // Per-cloud totals follow from web flow counts and the web share of
  // each cloud's flows: EC2 ~77%, Azure ~72%.
  const auto ec2_total =
      static_cast<std::size_t>(ec2_web_flows / 0.7697);
  const auto azure_total =
      static_cast<std::size_t>(azure_web_flows / 0.7233);

  auto cloud_dns_servers = [&](ProviderKind kind) {
    std::vector<net::Ipv4> out;
    const auto& provider =
        kind == ProviderKind::kEc2 ? world_.ec2() : world_.azure();
    for (const auto& inst : provider.instances())
      if (inst.type == "dns-vm") out.push_back(inst.public_ip);
    if (out.empty()) out.push_back(endpoints_.front().ip);
    return out;
  };
  auto any_instance_ip = [&](util::Rng& rng, ProviderKind kind) {
    const auto& provider =
        kind == ProviderKind::kEc2 ? world_.ec2() : world_.azure();
    const auto& instances = provider.instances();
    return instances[rng.next_below(instances.size())].public_ip;
  };

  auto emit_count_flows = [&](util::Rng& rng,
                              std::vector<pcap::Packet>& packets,
                              ProviderKind kind, std::size_t total) {
    const auto dns_servers = cloud_dns_servers(kind);
    const double dns_frac = kind == ProviderKind::kEc2 ? 0.1033 : 0.1159;
    const double udp_frac = kind == ProviderKind::kEc2 ? 0.0019 : 0.1477;
    const double icmp_frac = kind == ProviderKind::kEc2 ? 0.0003 : 0.0018;
    const double tcp_frac = kind == ProviderKind::kEc2 ? 0.0040 : 0.0110;

    const auto n_dns = static_cast<std::size_t>(total * dns_frac);
    for (std::size_t i = 0; i < n_dns; ++i) {
      const auto client = university_client(rng);
      const net::Endpoint server{
          dns_servers[rng.next_below(dns_servers.size())], 53};
      const double t =
          config_.start_time + rng.uniform01() * config_.duration_sec;
      std::vector<std::uint8_t> query(40 + rng.next_below(30), 0x11);
      std::vector<std::uint8_t> reply(120 + rng.next_below(200), 0x22);
      packets.push_back(pcap::make_udp_packet(t, client, server, query));
      packets.push_back(
          pcap::make_udp_packet(t + 0.03, server, client, reply));
    }
    const auto n_udp = static_cast<std::size_t>(total * udp_frac);
    for (std::size_t i = 0; i < n_udp; ++i) {
      const auto client = university_client(rng);
      const net::Endpoint server{any_instance_ip(rng, kind),
                                 static_cast<std::uint16_t>(
                                     3000 + rng.next_below(30000))};
      const double t =
          config_.start_time + rng.uniform01() * config_.duration_sec;
      const int datagrams = 1 + static_cast<int>(rng.next_below(3));
      std::vector<std::uint8_t> payload(100 + rng.next_below(300), 0x33);
      for (int d = 0; d < datagrams; ++d)
        packets.push_back(pcap::make_udp_packet(t + d * 0.2, client, server,
                                                payload));
    }
    const auto n_icmp = std::max<std::size_t>(
        1, static_cast<std::size_t>(total * icmp_frac));
    for (std::size_t i = 0; i < n_icmp; ++i) {
      const auto client = university_client(rng);
      const auto server = any_instance_ip(rng, kind);
      const double t =
          config_.start_time + rng.uniform01() * config_.duration_sec;
      std::vector<std::uint8_t> ping(48, 0x44);
      packets.push_back(
          pcap::make_icmp_packet(t, client.addr, server, 8, ping));
      packets.push_back(
          pcap::make_icmp_packet(t + 0.05, server, client.addr, 0, ping));
    }
    const auto n_tcp = static_cast<std::size_t>(total * tcp_frac);
    for (std::size_t i = 0; i < n_tcp; ++i) {
      const auto client = university_client(rng);
      const net::Endpoint server{any_instance_ip(rng, kind),
                                 rng.chance(0.5) ? std::uint16_t{22}
                                                 : std::uint16_t{25}};
      double t = config_.start_time + rng.uniform01() * config_.duration_sec;
      std::uint32_t seq = 1;
      packets.push_back(
          pcap::make_tcp_packet(t, client, server, {.syn = true}, seq, {}));
      packets.push_back(pcap::make_tcp_packet(
          t + 0.04, server, client, {.syn = true, .ack = true}, 0, {}));
      // Bulky non-web TCP (scp-like): more bytes per flow than HTTP.
      std::size_t bytes = static_cast<std::size_t>(
          std::min(rng.lognormal(std::log(12.0 * 1024), 1.0),
                   static_cast<double>(config_.emitted_flow_cap)));
      std::vector<std::uint8_t> chunk(static_cast<std::size_t>(kMss), 0x55);
      while (bytes > 0) {
        const std::size_t take = std::min(chunk.size(), bytes);
        t += 0.01;
        packets.push_back(pcap::make_tcp_packet(
            t, client, server, {.ack = true, .psh = true}, seq,
            std::span<const std::uint8_t>{chunk.data(), take}));
        bytes -= take;
        seq += static_cast<std::uint32_t>(take);
      }
      packets.push_back(pcap::make_tcp_packet(
          t + 0.02, client, server, {.ack = true, .fin = true}, seq, {}));
    }
  };

  // Non-web flows for the two clouds run as two more tasks, with RNG
  // streams placed after the per-endpoint streams.
  struct NonWebPlan {
    ProviderKind kind;
    std::size_t total;
  };
  const NonWebPlan non_web_plans[] = {
      {ProviderKind::kEc2, ec2_total},
      {ProviderKind::kAzure, azure_total},
  };
  auto non_web = exec::parallel_map(
      std::size(non_web_plans),
      [&](std::size_t i) {
        obs::Span nw_span{"synth.traffic.non_web"};
        std::vector<pcap::Packet> out;
        util::Rng rng = shards.stream(endpoints_.size() + i);
        emit_count_flows(rng, out, non_web_plans[i].kind,
                         non_web_plans[i].total);
        return out;
      },
      /*grain=*/1);

  // Both clouds' non-web flows form ONE unit: their only possible tuple
  // overlap (the shared fallback DNS server of a world with no dns-vm
  // instances) must stay inside a single unit so flow assembly sees those
  // packets in global capture order.
  std::vector<pcap::Packet> tail;
  std::size_t tail_count = 0;
  for (const auto& chunk : non_web) tail_count += chunk.size();
  tail.reserve(tail_count);
  for (auto& chunk : non_web)
    tail.insert(tail.end(), std::make_move_iterator(chunk.begin()),
                std::make_move_iterator(chunk.end()));
  std::stable_sort(tail.begin(), tail.end(), by_timestamp);
  deliver(std::move(tail));

  obs::counter("synth.traffic.packets").inc(total_packets);
  obs::counter("synth.traffic.bytes").inc(total_wire_bytes);
  obs::log_debug("synth.traffic", "generated {} packets ({} wire bytes)",
                 total_packets, total_wire_bytes);
  return total_packets;
}

std::vector<pcap::Packet> TrafficGenerator::generate() {
  std::vector<pcap::Packet> packets;
  packets.reserve(1 << 18);
  generate_units([&](std::vector<pcap::Packet>&& unit) {
    packets.insert(packets.end(), std::make_move_iterator(unit.begin()),
                   std::make_move_iterator(unit.end()));
  });
  // stable_sort, not sort: units arrive individually time-sorted with
  // emission order preserved at equal timestamps, so the stable global
  // sort rebuilds exactly the capture the pre-streaming generator
  // produced — independent of the thread count *and* of the sort
  // implementation's tie-breaking.
  std::stable_sort(packets.begin(), packets.end(),
                   [](const pcap::Packet& a, const pcap::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  return packets;
}

void TrafficGenerator::generate_to_file(const std::string& path) {
  const auto packets = generate();
  pcap::PcapWriter writer{path};
  for (const auto& p : packets) writer.write(p);
}

}  // namespace cs::synth
