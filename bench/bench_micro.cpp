// Micro-benchmarks (google-benchmark) for the hot substrate paths the
// study pipeline leans on: DNS wire codec, iterative resolution, prefix
// matching, packet decode, flow assembly, and HTTP/TLS parsing.
#include <benchmark/benchmark.h>

#include "analysis/ranges.h"
#include "dns/message.h"
#include "dns/resolver.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "pcap/decode.h"
#include "pcap/flow.h"
#include "proto/http.h"
#include "proto/tls.h"
#include "synth/world.h"

namespace {

using namespace cs;

dns::Message sample_response() {
  auto query = dns::Message::query(
      1, dns::Name::must_parse("www.example.com"), dns::RrType::kA);
  auto resp = dns::Message::response_to(query, dns::Rcode::kNoError, true);
  resp.answers.push_back(dns::ResourceRecord::cname(
      dns::Name::must_parse("www.example.com"),
      dns::Name::must_parse("lb-1.us-east-1.elb.amazonaws.com")));
  for (int i = 0; i < 3; ++i)
    resp.answers.push_back(dns::ResourceRecord::a(
        dns::Name::must_parse("lb-1.us-east-1.elb.amazonaws.com"),
        net::Ipv4(54, 0, 0, i)));
  return resp;
}

void BM_DnsEncode(benchmark::State& state) {
  const auto message = sample_response();
  for (auto _ : state) benchmark::DoNotOptimize(message.encode());
}
BENCHMARK(BM_DnsEncode);

void BM_DnsDecode(benchmark::State& state) {
  const auto wire = sample_response().encode();
  for (auto _ : state) benchmark::DoNotOptimize(dns::Message::decode(wire));
}
BENCHMARK(BM_DnsDecode);

void BM_PrefixLookup(benchmark::State& state) {
  auto ec2 = cloud::Provider::make_ec2(1);
  auto azure = cloud::Provider::make_azure(1);
  analysis::CloudRanges ranges{ec2, azure};
  std::uint32_t ip = 0x36000000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ranges.classify(net::Ipv4{ip}));
    ip += 77777;
  }
}
BENCHMARK(BM_PrefixLookup);

void BM_FrameDecode(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(1200, 0x5A);
  const auto packet = pcap::make_tcp_packet(
      1.0, {net::Ipv4(10, 0, 0, 1), 50000}, {net::Ipv4(54, 0, 0, 1), 443},
      {.ack = true, .psh = true}, 7, payload);
  for (auto _ : state)
    benchmark::DoNotOptimize(pcap::decode_frame(packet.bytes()));
}
BENCHMARK(BM_FrameDecode);

void BM_FlowAssembly(benchmark::State& state) {
  std::vector<pcap::Packet> packets;
  for (int i = 0; i < 64; ++i) {
    packets.push_back(pcap::make_tcp_packet(
        i * 0.01, {net::Ipv4(10, 0, 0, 1), static_cast<std::uint16_t>(
                                               40000 + i % 8)},
        {net::Ipv4(54, 0, 0, 1), 80}, {.ack = true}, i,
        std::vector<std::uint8_t>(256, 'x')));
  }
  for (auto _ : state) {
    pcap::FlowTable table;
    for (const auto& packet : packets) table.add(packet);
    benchmark::DoNotOptimize(table.finish());
  }
}
BENCHMARK(BM_FlowAssembly);

void BM_HttpParse(benchmark::State& state) {
  const auto request = proto::build_request("GET", "www.dropbox.com", "/f");
  for (auto _ : state) {
    std::size_t offset = 0;
    benchmark::DoNotOptimize(proto::parse_request(request, offset));
  }
}
BENCHMARK(BM_HttpParse);

void BM_TlsSniExtract(benchmark::State& state) {
  const auto hello = proto::build_client_hello("client1.dropbox.com");
  for (auto _ : state) benchmark::DoNotOptimize(proto::extract_sni(hello));
}
BENCHMARK(BM_TlsSniExtract);

void BM_IterativeResolution(benchmark::State& state) {
  synth::WorldConfig config;
  config.domain_count = 200;
  synth::World world{config};
  auto resolver = world.make_resolver(net::Ipv4(199, 16, 0, 10));
  const auto name = dns::Name::must_parse("www.pinterest.com");
  for (auto _ : state) {
    resolver.flush_cache();
    benchmark::DoNotOptimize(resolver.resolve(name, dns::RrType::kA));
  }
}
BENCHMARK(BM_IterativeResolution);

// The injector's contract when CS_FAULT is unset: one relaxed load and a
// branch. Compare against BM_IterativeResolution to confirm the guarded
// exchange path costs the same with the injector compiled in.
void BM_FaultCheckDisabled(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(fault::active_plan());
}
BENCHMARK(BM_FaultCheckDisabled);

void BM_FaultDecideEnabled(benchmark::State& state) {
  fault::Spec spec;
  spec.loss = 0.02;
  const fault::Plan plan{spec};
  std::uint64_t key = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(plan.decide(fault::Kind::kLoss, key++));
}
BENCHMARK(BM_FaultDecideEnabled);

// Guard number for the metrics-overhead contract: resolver tallies are
// plain members flushed as one delta at destruction, so iterative
// resolution under CS_METRICS=1 (arg 1) must time the same as with
// detailed metrics off (arg 0). A gap opening up here means a per-query
// shared atomic crept back into the enumeration hot path.
void BM_MetricsOverhead(benchmark::State& state) {
  const bool was_on = obs::detailed_metrics();
  obs::set_detailed_metrics(state.range(0) != 0);
  synth::WorldConfig config;
  config.domain_count = 200;
  synth::World world{config};
  auto resolver = world.make_resolver(net::Ipv4(199, 16, 0, 10));
  const auto name = dns::Name::must_parse("www.pinterest.com");
  for (auto _ : state) {
    resolver.flush_cache();
    benchmark::DoNotOptimize(resolver.resolve(name, dns::RrType::kA));
  }
  obs::set_detailed_metrics(was_on);
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1);

void BM_WorldBuild(benchmark::State& state) {
  for (auto _ : state) {
    synth::WorldConfig config;
    config.domain_count = static_cast<std::size_t>(state.range(0));
    synth::World world{config};
    benchmark::DoNotOptimize(world.domains().size());
  }
}
BENCHMARK(BM_WorldBuild)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
