// Reproduces Table 6: HTTP content types by byte count with mean/max
// object sizes. Paper's shape: html + plain text ~half the bytes and
// small; pdf/zip/mp4 rare but huge.
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 6: HTTP content types");
  auto study = core::Study{bench::default_config(400)};
  std::cout << core::render_table6(study.capture());
  return 0;
}
