// Reproduces Table 2: protocol mix per cloud. Paper's shape: TCP >99% of
// bytes; EC2 HTTPS-heavy (80.9% of bytes), Azure HTTP-heavy (59.97%);
// DNS ~10.6% of flows; Azure with a large other-UDP flow share.
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 2: protocol mix");
  auto study = core::Study{bench::default_config(400)};
  std::cout << core::render_table2(study.capture());
  return 0;
}
