// Reproduces Figures 9/10: average throughput and latency between
// representative clients and the three US EC2 regions. Paper's signal:
// region choice matters enormously (Seattle sees ~6x lower latency via
// us-west-2 than us-east-1) and the two US-West regions are not
// equivalent.
#include "bench_common.h"

#include "internet/vantage.h"

int main() {
  using namespace cs;
  bench::print_header("Figures 9/10: client x US-region performance");
  auto study = core::Study{bench::default_config(200)};
  auto& model = study.wan_model();

  // The paper shows 15 representative clients against the 3 US regions.
  const char* cities[] = {"seattle",  "berkeley",  "losangeles", "boulder",
                          "houston",  "chicago",   "madison",    "atlanta",
                          "boston",   "newyork",   "london",     "paris",
                          "tokyo",    "saopaulo",  "sydney"};
  std::vector<internet::VantagePoint> vantages;
  for (const auto* city : cities)
    vantages.push_back(internet::vantage_named(city));
  std::vector<const cloud::Region*> regions = {
      study.world().ec2().region("ec2.us-east-1"),
      study.world().ec2().region("ec2.us-west-1"),
      study.world().ec2().region("ec2.us-west-2")};

  const auto campaign = analysis::run_campaign(model, vantages, regions,
                                               /*days=*/1.0);
  const auto averages = analysis::average_matrix(campaign);
  std::cout << core::render_fig9_10(averages);

  // The headline contrasts.
  const auto& rtt = averages.avg_rtt_ms;
  std::cout << util::fmt(
      "\nSeattle: us-east-1 {:.0f} ms vs us-west-2 {:.0f} ms ({:.1f}x)\n",
      rtt[0][0], rtt[0][2], rtt[0][2] > 0 ? rtt[0][0] / rtt[0][2] : 0.0);
  return 0;
}
