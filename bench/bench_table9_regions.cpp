// Reproduces Table 9: region usage. Paper's shape: EC2 heavily skewed
// (74% of subdomains in US East, 16% in EU West); Azure flatter with US
// South/North on top. Also prints the single-region headline numbers
// (97% EC2 / 92% Azure).
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 9: region usage");
  auto study = core::Study{bench::default_config()};
  const auto& regions = study.regions();
  std::cout << core::render_table9(regions);
  std::cout << util::fmt(
      "\nsingle-region subdomains: EC2 {:.1f}% (paper 97%), Azure {:.1f}% "
      "(paper 92%)\n",
      100.0 * regions.ec2_single_region_fraction,
      100.0 * regions.azure_single_region_fraction);

  const auto geo =
      analysis::analyze_customer_geo(study.dataset(), regions, study.world());
  std::cout << util::fmt(
      "customer-location mismatch: {:.0f}% of subdomains hosted outside the "
      "customer country, {:.0f}% outside the continent (paper: 47% / 32%)\n",
      100.0 * geo.country_mismatch / std::max<std::size_t>(1,
          geo.classified_subdomains),
      100.0 * geo.continent_mismatch / std::max<std::size_t>(1,
          geo.classified_subdomains));
  return 0;
}
