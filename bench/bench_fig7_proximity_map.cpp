// Reproduces Figure 7: the sampled internal-address map — /16 blocks
// colored by merged zone label, showing zone-pure banding across the
// 10.0.0.0/8 space after the cross-account label-permutation merge.
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Figure 7: internal /16 -> zone map");
  auto study = core::Study{bench::default_config(200)};
  std::cout << core::render_fig7(study);
  return 0;
}
