// Extension of §5.1's discussion: once deployed in k=3 regions, how much
// of the oracle's gain does each practical routing strategy capture, and
// at what request amplification? The paper names the two end points
// (global request scheduling vs racing to multiple regions); this bench
// measures the spectrum between them.
#include "bench_common.h"

#include "analysis/routing.h"
#include "util/table.h"

int main() {
  using namespace cs;
  bench::print_header("Extension: routing strategies on a 3-region deploy");
  auto study = core::Study{bench::default_config(200)};
  const auto& campaign = study.campaign();

  // Deploy in the latency-optimal k=3 subset (Figure 12's answer).
  const auto k_results = analysis::optimal_k_regions(campaign);
  const auto deployment = k_results.at(2).best_regions;
  std::cout << "deployment:";
  for (const auto& region : deployment) std::cout << " " << region;
  std::cout << "\n\n";

  const auto outcomes = analysis::evaluate_routing(campaign, deployment);
  util::Table t{{"Strategy", "avg RTT (ms)", "near-optimal rounds",
                 "requests per round"}};
  for (const auto& outcome : outcomes)
    t.add(analysis::to_string(outcome.strategy), outcome.avg_rtt_ms,
          util::fmt("{:.0f}%", 100.0 * outcome.near_optimal_fraction),
          util::fmt("{:.1f}", outcome.request_amplification));
  std::cout << t.render();
  std::cout << "\n(the oracle is the §5.1 'global request scheduling' "
               "bound; race-two tracks it at 2x server load; naive "
               "rotation forfeits most of the multi-region gain)\n";
  return 0;
}
