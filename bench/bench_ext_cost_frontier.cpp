// Extension of §5.1's cost caveat: the latency/cost frontier of the
// optimal k-region deployments. The paper notes that inter-region charges
// and single-region storage push tenants toward fewer regions; this bench
// quantifies the marginal dollars per millisecond as k grows.
#include "bench_common.h"

#include "analysis/cost.h"
#include "util/table.h"

int main() {
  using namespace cs;
  bench::print_header("Extension: k-region cost/latency frontier");
  auto study = core::Study{bench::default_config(200)};
  const auto frontier =
      analysis::cost_latency_frontier(study.campaign(), {});

  util::Table t{{"k", "avg RTT (ms)", "compute $/mo", "replication $/mo",
                 "total $/mo", "$ per ms saved"}};
  for (const auto& cost : frontier)
    t.add(cost.k, cost.avg_rtt_ms, cost.compute_usd, cost.replication_usd,
          cost.total_usd,
          cost.k == 1
              ? std::string{"-"}
              : (cost.usd_per_ms_saved < 0
                     ? std::string{"inf"}
                     : util::fmt("{:.0f}", cost.usd_per_ms_saved)));
  std::cout << t.render();
  std::cout << "\n(egress is constant across k; the knee where $/ms "
               "explodes is where the paper's cost caveat bites)\n";
  return 0;
}
