// Reproduces Table 16: downstream-ISP counts per region and zone, plus
// the uneven route spread (up to ~1/3 of routes through one ISP) and the
// single-ISP failure impact that motivates multi-region deployments.
#include "bench_common.h"

#include "internet/vantage.h"
#include "util/table.h"

int main() {
  using namespace cs;
  bench::print_header("Table 16: downstream ISP diversity");
  auto study = core::Study{bench::default_config(200)};
  std::cout << core::render_table16(study.isp_study());

  bench::print_header("Single-ISP failure impact (extension of §5.2)");
  const auto vantages = internet::planetlab_vantages(100);
  const auto impacts = analysis::single_isp_failure_impact(
      study.world().ec2(), study.as_topology(), vantages);
  util::Table t{{"Region", "failed AS", "1-region unreachable",
                 "with failover region"}};
  for (const auto& impact : impacts)
    t.add(impact.region, impact.failed_asn,
          util::fmt("{:.0f}%", 100.0 * impact.single_region_unreachable),
          util::fmt("{:.0f}%", 100.0 * impact.multi_region_unreachable));
  std::cout << t.render();
  return 0;
}
