// Reproduces Figure 12: average latency/throughput for the optimal
// k-region deployment, k = 1..8. Paper's headline: k=3 cuts average
// latency ~33% vs k=1 with diminishing returns after (k=4 only reaches
// 39%); us-east-1 anchors every optimal subset.
// Ablation (DESIGN.md #3): sensitivity to the number of vantage points.
#include "bench_common.h"

#include "internet/vantage.h"
#include "util/table.h"

int main() {
  using namespace cs;
  bench::print_header("Figure 12: optimal k-region deployments");
  auto study = core::Study{bench::default_config(200)};
  const auto results = analysis::optimal_k_regions(study.campaign());
  std::cout << core::render_fig12(results);
  if (results.size() >= 3 && results[0].avg_rtt_ms > 0) {
    std::cout << util::fmt(
        "\nlatency reduction vs k=1: k=2 {:.0f}%, k=3 {:.0f}% (paper: 33%), "
        "k=4 {:.0f}% (paper: 39%)\n",
        100.0 * (1.0 - results[1].avg_rtt_ms / results[0].avg_rtt_ms),
        100.0 * (1.0 - results[2].avg_rtt_ms / results[0].avg_rtt_ms),
        results.size() > 3
            ? 100.0 * (1.0 - results[3].avg_rtt_ms / results[0].avg_rtt_ms)
            : 0.0);
  }

  bench::print_header("Ablation: vantage-count sensitivity (k=3 gain)");
  util::Table ablation{{"vantages", "k=1 RTT", "k=3 RTT", "gain"}};
  for (const std::size_t count : {10ul, 20ul, 40ul, 80ul}) {
    const auto vantages = internet::planetlab_vantages(count);
    std::vector<const cloud::Region*> regions;
    for (const auto& region : study.world().ec2().regions())
      regions.push_back(&region);
    const auto campaign = analysis::run_campaign(study.wan_model(), vantages,
                                                 regions, /*days=*/0.5);
    const auto sweep = analysis::optimal_k_regions(campaign);
    ablation.add(count, sweep[0].avg_rtt_ms, sweep[2].avg_rtt_ms,
                 util::fmt("{:.0f}%",
                           100.0 * (1.0 - sweep[2].avg_rtt_ms /
                                              sweep[0].avg_rtt_ms)));
  }
  std::cout << ablation.render();
  return 0;
}
