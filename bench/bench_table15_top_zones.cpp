// Reproduces Table 15: zone-usage estimates for the top EC2-using
// domains (pinterest.com's split between 1-zone and 3-zone subdomains,
// fc2.com's 2-zone bulk, single-zone ask/apple/imdb, ...).
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 15: zone usage of top domains");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_table15(study);
  return 0;
}
