// Reproduces Table 13: veracity of the latency method against the
// address-proximity labels (the paper's proxy truth; overall error 5.7%),
// plus our simulator-only extra: both methods scored against real ground
// truth. Ablation: proximity coverage vs sample count (DESIGN.md #4).
#include "bench_common.h"

#include "carto/proximity.h"
#include "util/table.h"

int main() {
  using namespace cs;
  bench::print_header("Table 13: latency vs proximity veracity");
  auto study = core::Study{bench::default_config()};
  const auto& zones = study.zone_study();
  std::cout << core::render_table13(zones);
  std::cout << util::fmt(
      "\nvs simulator ground truth: latency {:.1f}% correct, proximity "
      "{:.1f}% correct; combined identified {:.1f}% of instances (paper: "
      "87.0%)\n",
      100.0 * zones.latency_accuracy_vs_truth,
      100.0 * zones.proximity_accuracy_vs_truth,
      100.0 * zones.combined_identified_fraction);

  bench::print_header("Ablation: proximity samples vs /16 coverage");
  util::Table ablation{{"sampled instances", "labeled /16 blocks"}};
  for (const std::size_t samples : {100ul, 400ul, 1200ul, 2400ul, 5000ul}) {
    auto world_config = bench::default_config(50).world;
    synth::World world{world_config};
    carto::ProximityEstimator estimator{
        world.ec2(), {.seed = 5, .total_samples = samples}};
    ablation.add(samples, estimator.labeled_blocks());
  }
  std::cout << ablation.render();
  return 0;
}
