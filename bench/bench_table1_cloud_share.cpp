// Reproduces Table 1: percent of traffic volume and flows per cloud in
// the campus capture. Paper: EC2 81.73% of bytes / 80.70% of flows.
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 1: cloud share of capture traffic");
  auto study = core::Study{bench::default_config(400)};
  std::cout << core::render_table1(study.capture());
  return 0;
}
