// Extension of §4.2/§4.3: quantified outage impact. The paper's headline
// ("an outage of EC2's US East region would take down critical components
// of at least 2.3% of the Alexa top million = 61% of EC2-using domains")
// computed per failed region and per failed zone on our universe.
#include "bench_common.h"

#include "analysis/outage.h"
#include "util/table.h"

int main() {
  using namespace cs;
  bench::print_header("Extension: region-outage impact");
  auto study = core::Study{bench::default_config()};
  const auto region_impacts =
      analysis::region_outage_impact(study.dataset(), study.regions());
  util::Table regions{{"Failed region", "subdomains down",
                       "subdomains degraded", "domains affected",
                       "% of cloud domains"}};
  for (const auto& impact : region_impacts)
    regions.add(impact.failed_unit, impact.subdomains_down,
                impact.subdomains_degraded, impact.domains_affected,
                util::fmt("{:.1f}%",
                          100.0 * impact.domains_affected_fraction));
  std::cout << regions.render();
  std::cout << "\n(paper: a US East failure hits 61% of EC2-using "
               "domains)\n\n";

  bench::print_header("Extension: zone-outage impact (top 8 units)");
  const auto& zones = study.zone_study();
  const auto zone_impacts = analysis::zone_outage_impact(
      study.dataset(),
      {.subdomain_zones = zones.subdomain_zones,
       .subdomain_primary_region = zones.subdomain_primary_region});
  util::Table zone_table{{"Failed zone", "subdomains down",
                          "subdomains degraded", "domains affected"}};
  for (std::size_t i = 0; i < std::min<std::size_t>(8, zone_impacts.size());
       ++i) {
    const auto& impact = zone_impacts[i];
    zone_table.add(impact.failed_unit, impact.subdomains_down,
                   impact.subdomains_degraded, impact.domains_affected);
  }
  std::cout << zone_table.render();
  std::cout << "\n(paper: a us-east-1a failure would fully disable ~16% of "
               "zone-identified subdomains and cripple the 2-zone bulk)\n";
  return 0;
}
