// Reproduces Figure 11: RTT time series from Boulder to the three US
// regions — the best-performing region changes over time, so a static
// region choice is suboptimal for mid-continent clients.
#include "bench_common.h"

#include "internet/vantage.h"

int main() {
  using namespace cs;
  bench::print_header("Figure 11: Boulder best-region flapping");
  auto study = core::Study{bench::default_config(200)};
  std::vector<internet::VantagePoint> vantages = {
      internet::vantage_named("boulder")};
  std::vector<const cloud::Region*> regions = {
      study.world().ec2().region("ec2.us-east-1"),
      study.world().ec2().region("ec2.us-west-1"),
      study.world().ec2().region("ec2.us-west-2")};
  const auto campaign = analysis::run_campaign(study.wan_model(), vantages,
                                               regions, /*days=*/3.0);
  const auto series = analysis::flapping_series(campaign, "boulder");
  std::cout << core::render_fig11(series);
  return 0;
}
