// Reproduces Table 14: estimated (sub)domains per zone — the per-region
// skew (the paper's most-used us-east-1 zone holds ~2.7x the subdomains
// of the least-used).
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 14: zone usage per region");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_table14(study.zone_study());
  return 0;
}
