// Live-socket transport throughput: sustained queries/sec and exchange
// latency percentiles for the netio backend (DnsSocketServer behind
// SO_REUSEPORT listeners, SocketDnsTransport multiplexing pipelined
// clients over real localhost UDP). The world is the usual synthetic
// universe; every exchange is a full kernel round trip.
//
// Extra knobs (on top of bench_common's):
//   CS_QPS_CLIENTS - concurrent client threads (default 8)
//   CS_QPS_QUERIES - total exchanges to drive (default 200000)
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dns/message.h"
#include "netio/loopback.h"
#include "synth/world.h"

int main() {
  using namespace cs;
  bench::print_header("Socket transport: sustained QPS");

  synth::WorldConfig world_config;
  world_config.domain_count = bench::env_size("CS_DOMAINS", 300);
  world_config.seed = bench::env_size("CS_SEED", 2013);
  synth::World world{world_config};

  netio::LoopbackDns loopback{world.network(),
                              netio::LoopbackDns::options_from_env()};
  if (!loopback.start()) {
    std::cout << "socket backend unavailable; nothing to measure\n";
    return 1;
  }

  // One wire query per domain, all aimed at the root: every exchange is a
  // real referral lookup, and the set is large enough to defeat any
  // would-be caching below the transport.
  const net::Ipv4 client{192, 0, 2, 1};
  const net::Ipv4 root = world.root_servers().front();
  std::vector<std::vector<std::uint8_t>> queries;
  queries.reserve(world.domains().size());
  for (const auto& domain : world.domains()) {
    const auto www = domain.name.child("www");
    if (!www) continue;
    queries.push_back(
        dns::Message::query(static_cast<std::uint16_t>(queries.size()), *www,
                            dns::RrType::kA)
            .encode());
  }

  const std::size_t clients = bench::env_size("CS_QPS_CLIENTS", 8);
  const std::size_t total = bench::env_size("CS_QPS_QUERIES", 200'000);
  const std::size_t per_client = total / clients;

  // Warm the path (socket buffers, metrics registration, branch caches).
  for (std::size_t i = 0; i < 64; ++i)
    loopback.transport().exchange(client, root, queries[i % queries.size()]);

  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> failed{0};
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::uint64_t ok = 0, bad = 0;
        for (std::size_t i = 0; i < per_client; ++i) {
          const auto& query = queries[(c * per_client + i) % queries.size()];
          if (loopback.transport().exchange(client, root, query))
            ++ok;
          else
            ++bad;
        }
        answered.fetch_add(ok);
        failed.fetch_add(bad);
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto snapshot = obs::MetricsRegistry::instance().snapshot();
  double p50 = 0, p99 = 0;
  for (const auto& h : snapshot.histograms)
    if (h.name == "netio.client.exchange_us") {
      p50 = h.quantile(0.50);
      p99 = h.quantile(0.99);
    }

  const double qps = wall_s > 0 ? answered.load() / wall_s : 0;
  std::cout << "clients:            " << clients << "\n"
            << "exchanges answered: " << answered.load() << "\n"
            << "exchanges failed:   " << failed.load() << "\n"
            << "wall seconds:       " << wall_s << "\n"
            << "sustained QPS:      " << static_cast<std::uint64_t>(qps)
            << "\n"
            << "exchange p50 (us):  " << p50 << "\n"
            << "exchange p99 (us):  " << p99 << "\n"
            << "retransmits:        "
            << snapshot.counter("netio.client.retransmits") << "\n"
            << "expirations:        "
            << snapshot.counter("netio.client.expirations") << "\n";
  // The CS_BENCH_JSON sidecar (obs::RunReport) carries the same histogram
  // with full percentile detail for the perf trajectory.
  return 0;
}
