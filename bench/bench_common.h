#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "core/report.h"
#include "core/study.h"
#include "exec/config.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/format.h"

/// Shared scaffolding for the table/figure benches.
///
/// Every bench reproduces one table or figure of the paper on the default
/// synthetic universe. Scale knobs:
///   CS_DOMAINS  - size of the ranked domain universe (default 1500)
///   CS_SEED     - world seed (default 2013)
/// Observability knobs (see DESIGN.md "Observability"):
///   CS_TRACE      - write a Chrome trace-event JSON of pipeline spans here
///   CS_LOG_LEVEL  - trace|debug|info|warn|error|off (default warn)
///   CS_BENCH_JSON - write a machine-readable sidecar here at exit: wall
///                   time per pipeline stage plus every metrics counter,
///                   the input to the BENCH_* perf trajectory.
/// Parallelism knobs (see DESIGN.md "Execution model"):
///   CS_THREADS        - exec pool width (default: hardware concurrency);
///                       the sidecar records it plus pool task/steal/queue
///                       metrics.
///   CS_BENCH_BASELINE - path to a previous sidecar (typically a
///                       CS_THREADS=1 run of the same bench); the new
///                       sidecar then reports baseline_wall_ms and the
///                       speedup over it.
/// The output is the reproduced table plus, where stated, an ablation.
namespace cs::bench {

/// Parses a positive integer environment override through util::env's
/// strict rules. Values with trailing garbage ("15x"), signs, or zero are
/// rejected with the uniform malformed-knob warning — a silent misparse
/// would quietly bench the wrong universe.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const auto value = util::env_text(name);
  if (!value) return fallback;
  const auto parsed = util::parse_env_unsigned(*value);
  if (!parsed || *parsed == 0) {
    obs::log_warn("bench", "{}",
                  util::env_malformed(name, *value, "a positive integer"));
    return fallback;
  }
  return *parsed;
}

inline core::StudyConfig default_config(std::size_t default_domains = 1500) {
  core::StudyConfig config;
  config.world.domain_count = env_size("CS_DOMAINS", default_domains);
  config.world.seed = env_size("CS_SEED", 2013);
  config.dataset.lookup_vantages = 4;
  return config;
}

namespace detail {

inline std::string& sidecar_bench_name() {
  static std::string name;
  return name;
}

inline void json_escape_into(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

/// Pulls "wall_ms": <number> out of a previous sidecar. A full JSON
/// parser would be overkill for reading back our own output.
inline double read_baseline_wall_ms(const std::string& path) {
  std::ifstream file{path, std::ios::binary};
  if (!file) {
    obs::log_warn("bench", "cannot read CS_BENCH_BASELINE path '{}'", path);
    return 0.0;
  }
  std::string text{std::istreambuf_iterator<char>{file},
                   std::istreambuf_iterator<char>{}};
  const auto pos = text.find("\"wall_ms\": ");
  if (pos == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + pos + 11, nullptr);
}

/// Writes the CS_BENCH_JSON sidecar: per-stage wall time from the span
/// collector, the exec-pool shape (threads, tasks, steals, queue depth)
/// plus a dump of every counter. Registered via atexit from print_header
/// so each bench main stays a straight-line reproduction.
inline void write_bench_sidecar() {
  const auto path = util::env_text("CS_BENCH_JSON");
  if (!path) return;

  const double wall_ms = obs::Tracer::instance().epoch_now_us() / 1000.0;
  std::string out;
  out += "{\n  \"bench\": \"";
  json_escape_into(out, sidecar_bench_name());
  out += "\",\n  \"wall_ms\": ";
  out += util::fmt("{:.3f}", wall_ms);
  out += util::fmt(",\n  \"threads\": {}", exec::thread_count());
  if (const auto baseline = util::env_text("CS_BENCH_BASELINE")) {
    if (const double base_ms = read_baseline_wall_ms(*baseline);
        base_ms > 0.0 && wall_ms > 0.0) {
      out += util::fmt(",\n  \"baseline_wall_ms\": {:.3f}", base_ms);
      out += util::fmt(",\n  \"speedup\": {:.3f}", base_ms / wall_ms);
    }
  }
  {
    const auto snapshot = obs::MetricsRegistry::instance().snapshot();
    std::int64_t max_depth = 0;
    for (const auto& g : snapshot.gauges)
      if (g.name == "exec.pool.max_queue_depth") max_depth = g.value;
    out += util::fmt(
        ",\n  \"pool\": {{\"tasks\": {}, \"steals\": {}, "
        "\"max_queue_depth\": {}}}",
        snapshot.counter("exec.pool.tasks"),
        snapshot.counter("exec.pool.steals"), max_depth);
  }
  out += ",\n  \"stages\": [";
  bool first = true;
  for (const auto& stage : obs::Tracer::instance().stats()) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"name\": \"";
    json_escape_into(out, stage.name);
    out += util::fmt(
        "\", \"count\": {}, \"total_ms\": {:.3f}, \"self_ms\": {:.3f}}}",
        stage.count, stage.total_us / 1000.0, stage.self_us / 1000.0);
  }
  out += "\n  ],\n  \"counters\": {";
  first = true;
  for (const auto& c : obs::MetricsRegistry::instance().snapshot().counters) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    json_escape_into(out, c.name);
    out += util::fmt("\": {}", c.value);
  }
  out += "\n  }\n}\n";

  std::ofstream file{*path, std::ios::binary | std::ios::trunc};
  if (!file) {
    obs::log_error("bench", "cannot open CS_BENCH_JSON path '{}'", *path);
    return;
  }
  file << out;
}

}  // namespace detail

inline void print_header(const std::string& name) {
  if (const auto sidecar = util::env_text("CS_BENCH_JSON");
      sidecar && detail::sidecar_bench_name().empty()) {
    detail::sidecar_bench_name() = name;
    // Stage wall times come from the span collector even without CS_TRACE.
    obs::Tracer::instance().enable_collection();
    std::atexit(&detail::write_bench_sidecar);
  }
  std::cout << "==== " << name << " ====\n";
}

}  // namespace cs::bench
