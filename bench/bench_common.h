#pragma once

#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "core/report.h"
#include "core/study.h"
#include "exec/config.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/format.h"
#include "util/json.h"

/// Shared scaffolding for the table/figure benches.
///
/// Every bench reproduces one table or figure of the paper on the default
/// synthetic universe. Scale knobs:
///   CS_DOMAINS  - size of the ranked domain universe (default 1500)
///   CS_SEED     - world seed (default 2013)
/// Observability knobs (see DESIGN.md "Observability"):
///   CS_TRACE      - write a Chrome trace-event JSON of pipeline spans here
///   CS_LOG_LEVEL  - trace|debug|info|warn|error|off (default warn)
///   CS_BENCH_JSON - write a machine-readable sidecar here at exit: wall
///                   time per pipeline stage plus every metrics counter,
///                   the input to the BENCH_* perf trajectory.
/// Parallelism knobs (see DESIGN.md "Execution model"):
///   CS_THREADS        - exec pool width (default: hardware concurrency);
///                       the sidecar records it plus pool task/steal/queue
///                       metrics.
///   CS_BENCH_BASELINE - path to a previous sidecar (typically a
///                       CS_THREADS=1 run of the same bench); the new
///                       sidecar then reports baseline_wall_ms and the
///                       speedup over it.
/// The output is the reproduced table plus, where stated, an ablation.
namespace cs::bench {

/// Parses a positive integer environment override through util::env's
/// strict rules. Values with trailing garbage ("15x"), signs, or zero are
/// rejected with the uniform malformed-knob warning — a silent misparse
/// would quietly bench the wrong universe.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const auto value = util::env_text(name);
  if (!value) return fallback;
  const auto parsed = util::parse_env_unsigned(*value);
  if (!parsed || *parsed == 0) {
    obs::log_warn("bench", "{}",
                  util::env_malformed(name, *value, "a positive integer"));
    return fallback;
  }
  return *parsed;
}

inline core::StudyConfig default_config(std::size_t default_domains = 1500) {
  core::StudyConfig config;
  config.world.domain_count = env_size("CS_DOMAINS", default_domains);
  config.world.seed = env_size("CS_SEED", 2013);
  config.dataset.lookup_vantages = 4;
  return config;
}

namespace detail {

inline std::string& sidecar_bench_name() {
  static std::string name;
  return name;
}

/// Pulls "wall_ms" out of a previous sidecar through the shared JSON
/// reader (a substring scan used to silently return 0.0 whenever the
/// writer's key formatting drifted).
inline double read_baseline_wall_ms(const std::string& path) {
  std::ifstream file{path, std::ios::binary};
  if (!file) {
    obs::log_warn("bench", "cannot read CS_BENCH_BASELINE path '{}'", path);
    return 0.0;
  }
  std::string text{std::istreambuf_iterator<char>{file},
                   std::istreambuf_iterator<char>{}};
  const auto parsed = util::parse_json(text);
  if (!parsed) {
    obs::log_warn("bench", "CS_BENCH_BASELINE '{}' is not valid JSON", path);
    return 0.0;
  }
  const auto* wall = parsed->find("wall_ms");
  if (!wall || !wall->is_number()) {
    obs::log_warn("bench", "CS_BENCH_BASELINE '{}' has no wall_ms", path);
    return 0.0;
  }
  return wall->number;
}

/// Writes the CS_BENCH_JSON sidecar via obs::RunReport — one consistent
/// metrics snapshot covering wall time, per-stage spans, resource usage,
/// pool shape, snap/fault activity, histogram percentiles, and every
/// counter. Registered via atexit from print_header so each bench main
/// stays a straight-line reproduction.
inline void write_bench_sidecar() {
  const auto path = util::env_text("CS_BENCH_JSON");
  if (!path) return;
  auto report = obs::RunReport::capture(sidecar_bench_name());
  report.threads = exec::thread_count();
  if (const auto baseline = util::env_text("CS_BENCH_BASELINE"))
    report.baseline_wall_ms = read_baseline_wall_ms(*baseline);
  report.write(*path);
}

}  // namespace detail

inline void print_header(const std::string& name) {
  if (const auto sidecar = util::env_text("CS_BENCH_JSON");
      sidecar && detail::sidecar_bench_name().empty()) {
    detail::sidecar_bench_name() = name;
    // Stage wall times come from the span collector even without CS_TRACE.
    obs::Tracer::instance().enable_collection();
    std::atexit(&detail::write_bench_sidecar);
  }
  std::cout << "==== " << name << " ====\n";
}

}  // namespace cs::bench
