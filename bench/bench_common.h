#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/report.h"
#include "core/study.h"
#include "util/format.h"

/// Shared scaffolding for the table/figure benches.
///
/// Every bench reproduces one table or figure of the paper on the default
/// synthetic universe. Scale knobs:
///   CS_DOMAINS  - size of the ranked domain universe (default 1500)
///   CS_SEED     - world seed (default 2013)
/// The output is the reproduced table plus, where stated, an ablation.
namespace cs::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    const auto parsed = std::strtoull(value, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

inline core::StudyConfig default_config(std::size_t default_domains = 1500) {
  core::StudyConfig config;
  config.world.domain_count = env_size("CS_DOMAINS", default_domains);
  config.world.seed = env_size("CS_SEED", 2013);
  config.dataset.lookup_vantages = 4;
  return config;
}

inline void print_header(const std::string& name) {
  std::cout << "==== " << name << " ====\n";
}

}  // namespace cs::bench
