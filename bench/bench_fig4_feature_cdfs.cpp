// Reproduces Figure 4: per-subdomain CDFs of (a) front-end VM instances
// (paper: ~half of VM-using subdomains have 2+ VMs) and (b) physical ELB
// instances (95% have <=5; rare tails like m.netflix.com's 90).
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Figure 4: feature instances per subdomain");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_fig4(study.patterns());
  return 0;
}
