// Reproduces Table 8: per-feature breakdown for the highest-ranked
// EC2-using domains (amazon.com's ELB-heavy posture, pinterest.com's
// VM-only posture, imdb.com's CDN use, ...).
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 8: features of top EC2-using domains");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_table8(study);
  return 0;
}
