// Reproduces Table 5: domains with the highest HTTP(S) traffic volume.
// Paper's headline: dropbox.com alone carries ~68% of web bytes; a few
// tenants dominate; Azure's list is Microsoft-property-heavy.
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 5: top traffic domains");
  auto study = core::Study{bench::default_config(400)};
  std::cout << core::render_table5(study.capture());
  std::cout << util::fmt(
      "\nunique cloud domains in capture: {} EC2, {} Azure; {} also in the "
      "ranked universe\n",
      study.capture().unique_domains_ec2,
      study.capture().unique_domains_azure,
      study.capture().domains_in_alexa);
  return 0;
}
