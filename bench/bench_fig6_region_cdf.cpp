// Reproduces Figure 6: CDFs of regions per subdomain / per domain
// (paper: >97% of EC2 and 92% of Azure subdomains in a single region).
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Figure 6: regions per (sub)domain");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_fig6(study.regions());
  return 0;
}
