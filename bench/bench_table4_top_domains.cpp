// Reproduces Table 4: the top-10 (by Alexa rank) EC2-using domains with
// their subdomain counts — the paper's marquee rows (amazon.com at rank 9,
// pinterest.com with 18 EC2 subdomains, ...).
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 4: top EC2-using domains");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_table4(study.cloud_usage());
  std::cout << "\nTop cloud subdomain prefixes (paper: www, m, ftp, cdn, "
               "mail, ...):\n";
  for (const auto& [prefix, count] : study.cloud_usage().top_prefixes)
    std::cout << "  " << prefix << ": " << count << "\n";
  return 0;
}
