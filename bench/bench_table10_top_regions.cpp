// Reproduces Table 10: region usage of the top cloud-using domains
// (live.com's 18 subdomains across 3 regions, msn.com's 89 across 5,
// single-region pinterest.com, ...).
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 10: regions of top cloud-using domains");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_table10(study);
  return 0;
}
