// Reproduces Figure 3: CDFs of HTTP/HTTPS flow counts per domain and
// flow sizes. Paper's shape: heavy-tailed; HTTPS flows larger than HTTP
// (EC2 medians ~10K vs ~2K); top-100 domains carry ~80% of EC2's HTTP
// flows.
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Figure 3: flow count and size CDFs");
  auto study = core::Study{bench::default_config(400)};
  const auto& capture = study.capture();
  std::cout << core::render_fig3(capture);
  std::cout << util::fmt(
      "\ntop-100 domains carry {:.0f}% of EC2 HTTP flows and {:.0f}% of "
      "Azure's (paper: ~80% / ~100%)\n",
      100.0 * capture.top100_http_flow_share_ec2,
      100.0 * capture.top100_http_flow_share_azure);
  std::cout << util::fmt(
      "median flow size: EC2 HTTP {:.0f} B, EC2 HTTPS {:.0f} B (paper: 2K / "
      "10K)\n",
      capture.http_flow_size_ec2.value_at(0.5),
      capture.https_flow_size_ec2.value_at(0.5));
  return 0;
}
