// Reproduces Table 11: RTTs from a us-east-1a micro instance to
// instances of four types across three zones. Paper's signal: same-zone
// ~0.5 ms regardless of instance type; cross-zone 1.4-2.0 ms.
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 11: intra-region RTT by zone and type");
  auto study = core::Study{bench::default_config(200)};
  std::cout << core::render_table11(study);
  std::cout << "\n(zone columns are the probing account's labels; the "
               "same-zone column stays ~0.5 ms for every type)\n";
  return 0;
}
