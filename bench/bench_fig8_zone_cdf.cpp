// Reproduces Figure 8: CDFs of zones per subdomain / per domain
// (paper: 33.2% one zone, 44.5% two, 22.3% three+; 70% of domains
// average one zone per subdomain).
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Figure 8: zones per (sub)domain");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_fig8(study.zone_study());
  return 0;
}
