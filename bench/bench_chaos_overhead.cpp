// Chaos-off must be free. Every datagram the socket transport sends and
// every answer the server emits passes one `chaos == nullptr` test; with
// CS_CHAOS unset no ChaosLink is ever constructed and that branch is the
// entire cost of the feature. This bench prices the branch (target:
// around a nanosecond per frame) and, for contrast, a live ChaosLink
// decision (mutex + per-key state + seeded draws). The smoke manifest
// pins the wall time so the fast path cannot silently grow a real cost.
//
// Extra knobs (on top of bench_common's):
//   CS_CHAOS_FRAMES    - fast-path iterations (default 50000000)
//   CS_CHAOS_DECISIONS - live-link decisions (default 1000000)
#include <chrono>
#include <cstdint>

#include "bench_common.h"
#include "netio/chaos.h"

int main() {
  using namespace cs;
  bench::print_header("Chaos link: per-frame overhead");

  const std::size_t frames =
      bench::env_size("CS_CHAOS_FRAMES", 50'000'000);
  const std::size_t decisions =
      bench::env_size("CS_CHAOS_DECISIONS", 1'000'000);

  // The transport's chaos-off fast path, isolated: one pointer test per
  // frame. `volatile` keeps the load and the branch alive in the loop —
  // exactly what send_query_locked/send_frame execute when no profile is
  // configured.
  netio::ChaosLink* volatile link = nullptr;
  std::uint64_t delivered = 0;
  const auto off_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < frames; ++i) {
    netio::ChaosLink* current = link;
    if (current)
      delivered += current
                       ->decide(netio::ChaosDirection::kClientToServer,
                                static_cast<std::uint64_t>(i), 64)
                       .deliver;
    else
      ++delivered;
  }
  const double off_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - off_start)
          .count() /
      static_cast<double>(frames);

  // For contrast: the full impairment decision on a live link. Keys wrap
  // at the mux-ID space so the per-key table stays bounded, as it is on
  // the real wire.
  netio::ChaosProfile profile;
  profile.drop = 0.05;
  profile.dup = 0.05;
  profile.reorder = 0.05;
  profile.delay_us = 100;
  profile.jitter_us = 100;
  netio::ChaosLink active{profile, 3};
  const auto on_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < decisions; ++i) {
    const auto direction = (i & 1) ? netio::ChaosDirection::kServerToClient
                                   : netio::ChaosDirection::kClientToServer;
    delivered +=
        active.decide(direction, static_cast<std::uint64_t>(i & 0xFFFF), 64)
            .deliver;
  }
  const double on_ns = std::chrono::duration<double, std::nano>(
                           std::chrono::steady_clock::now() - on_start)
                           .count() /
                       static_cast<double>(decisions);

  std::cout << "frames (chaos off):     " << frames << "\n"
            << "fast path (ns/frame):   " << off_ns << "\n"
            << "decisions (chaos on):   " << decisions << "\n"
            << "decision (ns/frame):    " << on_ns << "\n"
            << "decision/fast-path:     "
            << (off_ns > 0 ? on_ns / off_ns : 0) << "x\n"
            << "checksum:               " << delivered << "\n";
  return 0;
}
