// Reproduces Figure 5: CDF of the number of DNS servers per cloud-using
// subdomain (paper: ~80% of subdomains use 3-10 name servers).
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Figure 5: DNS servers per subdomain");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_fig5(study.patterns());
  return 0;
}
