// Reproduces Table 12: latency-method zone estimates per region at
// T = 1.1 ms, including the ap-northeast-1 pathology (no probe in one
// zone -> ~50% unknown). Ablation: threshold sweep showing the
// unknown-rate / error-rate trade-off (DESIGN.md ablation #1).
#include "bench_common.h"

#include "carto/latency_zone.h"
#include "util/table.h"

int main() {
  using namespace cs;
  bench::print_header("Table 12: latency-based zone identification");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_table12(study.zone_study());

  bench::print_header("Ablation: threshold T sweep (us-east-1 targets)");
  // Re-run the estimator at several thresholds over the same target set.
  auto config = bench::default_config(400);
  core::Study sweep_study{config};
  const auto& dataset = sweep_study.dataset();
  const auto& ranges = sweep_study.ranges();
  std::vector<net::Ipv4> targets;
  for (const auto& obs : dataset.cloud_subdomains)
    for (const auto addr : obs.addresses)
      if (ranges.region_of(addr).value_or("") == "ec2.us-east-1")
        targets.push_back(addr);

  util::Table ablation{{"T (ms)", "identified", "unknown", "error vs truth"}};
  for (const double threshold : {0.6, 0.9, 1.1, 1.5, 2.5}) {
    carto::LatencyZoneEstimator estimator{
        sweep_study.world().ec2(), sweep_study.wan_model(),
        {.seed = 5, .threshold_ms = threshold}};
    std::size_t identified = 0, unknown = 0, wrong = 0;
    for (const auto addr : targets) {
      const auto estimate = estimator.estimate(addr, "ec2.us-east-1");
      if (!estimate.responded) continue;
      if (!estimate.zone_label) {
        ++unknown;
        continue;
      }
      ++identified;
      const auto truth =
          sweep_study.world().ec2().zone_of_public_ip(addr);
      if (truth && estimator.label_to_physical("ec2.us-east-1",
                                               *estimate.zone_label) != *truth)
        ++wrong;
    }
    ablation.add(threshold, identified, unknown,
                 util::fmt("{:.1f}%", identified ? 100.0 * wrong / identified
                                                 : 0.0));
  }
  std::cout << ablation.render();
  return 0;
}
