// Reproduces Table 7: feature usage summary from the CNAME/IP heuristics.
// Paper's shape: VM front ends dominate EC2 (71.5% of subdomains), ELB
// 3.8%, Heroku-without-ELB serves ~58K subdomains from 94 IPs; Azure CS
// fronts ~70% and TM ~1.5% of Azure subdomains.
#include "bench_common.h"

int main() {
  using namespace cs;
  bench::print_header("Table 7: cloud feature usage");
  auto study = core::Study{bench::default_config()};
  const auto& patterns = study.patterns();
  std::cout << core::render_table7(patterns);
  std::cout << util::fmt(
      "\nEC2 subdomains: {} ({} with CNAMEs); Azure subdomains: {} ({} with "
      "CNAMEs, {} direct-IP)\n",
      patterns.ec2_subdomains, patterns.ec2_subdomains_with_cname,
      patterns.azure_subdomains, patterns.azure_subdomains_with_cname,
      patterns.azure_direct_ip_subdomains);
  std::cout << util::fmt(
      "name servers: {} total; {} in CloudFront (route53-style), {} on EC2 "
      "VMs, {} in Azure, {} external (paper: 2062/1239/22/19788 of 23111)\n",
      patterns.ns_total, patterns.ns_in_cloudfront, patterns.ns_in_ec2,
      patterns.ns_in_azure, patterns.ns_external);

  // ELB proxy sharing, §4.1: ~4% of physical ELBs serve 10+ subdomains.
  std::size_t shared10 = 0;
  for (const auto& [ip, count] : patterns.subdomains_per_physical_elb)
    if (count >= 3) ++shared10;
  std::cout << util::fmt(
      "physical ELBs shared by 3+ subdomains: {} of {}\n", shared10,
      patterns.subdomains_per_physical_elb.size());
  return 0;
}
