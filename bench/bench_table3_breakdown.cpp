// Reproduces Table 3: domains/subdomains by provider mix. Paper: ~4% of
// domains cloud-using; EC2 dominates (94.9% of cloud domains); most
// cloud-using domains also use other hosting (EC2+Other 86.1%).
// Ablation: brute-force wordlist size vs enumeration recall (the
// methodology's admitted lower-bound bias).
#include "bench_common.h"

#include "dns/wordlist.h"
#include "util/table.h"

int main() {
  using namespace cs;
  bench::print_header("Table 3: provider breakdown");
  auto study = core::Study{bench::default_config()};
  std::cout << core::render_table3(study.cloud_usage());

  const auto& dataset = study.dataset();
  std::cout << util::fmt(
      "\ncloud-using domains: {} of {} ({:.1f}%), subdomains found: {}\n",
      dataset.cloud_using_domain_count(), dataset.domains.size(),
      100.0 * dataset.cloud_using_domain_count() / dataset.domains.size(),
      dataset.cloud_subdomains.size());
  std::cout << util::fmt(
      "rank skew: {:.1f}% of cloud-using domains in top quartile vs {:.1f}% "
      "in bottom quartile (paper: 42.3% vs 16.2%)\n",
      100.0 * study.cloud_usage().top_quartile_fraction,
      100.0 * study.cloud_usage().bottom_quartile_fraction);

  // Ablation: recall vs wordlist size.
  bench::print_header("Ablation: wordlist size vs subdomains discovered");
  util::Table ablation{{"wordlist words", "cloud subdomains found"}};
  for (const std::size_t words : {8ul, 40ul, 120ul, 160ul}) {
    auto config = bench::default_config(300);
    const auto& full = dns::default_wordlist();
    config.dataset.wordlist.assign(
        full.begin(), full.begin() + std::min(words, full.size()));
    config.dataset.collect_name_servers = false;
    core::Study ablation_study{config};
    ablation.add(words, ablation_study.dataset().cloud_subdomains.size());
  }
  std::cout << ablation.render();
  return 0;
}
