#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "csbench/csbench.h"
#include "util/env.h"

namespace {

constexpr const char* kUsage =
    "usage: csbench [options]              record a BENCH_<tag>.json manifest\n"
    "       csbench --check MANIFEST ...   re-run it and gate on regressions\n"
    "\n"
    "Runs the bench binaries (each writes a CS_BENCH_JSON sidecar), N\n"
    "repetitions each with the first warm-up run discarded, and\n"
    "aggregates min/median/IQR per bench and per pipeline stage.\n"
    "\n"
    "  --bench-dir DIR  bench binaries (default: build/bench, else bench)\n"
    "  --tag TAG        manifest tag; output BENCH_<TAG>.json (default:\n"
    "                   local)\n"
    "  --out FILE       output path override; in --check mode the fresh\n"
    "                   manifest is written here (default: none)\n"
    "  --reps N         measured repetitions (default: CS_BENCH_REPS or 3)\n"
    "  --filter A,B     substring filters on bench names (default:\n"
    "                   CS_BENCH_FILTER; empty = every bench)\n"
    "  --domains N      CS_DOMAINS for the children (default: CS_DOMAINS\n"
    "                   or 120 - small enough for CI)\n"
    "  --seed N         CS_SEED for the children (default: CS_SEED or 2013)\n"
    "  --threads N      CS_THREADS for the children (default: CS_THREADS\n"
    "                   or hardware concurrency)\n"
    "  --floor PCT      regression floor percent (default:\n"
    "                   CS_BENCH_CHECK_PCT or 50)\n"
    "  --list           list the discovered benches and exit\n"
    "\n"
    "--check re-runs under the manifest's recorded machine shape and\n"
    "exits 1 when any median wall time exceeds\n"
    "baseline * (1 + max(floor, 3*IQR/median)). Exits 2 on usage or I/O\n"
    "errors.\n";

std::optional<unsigned> parse_count(const std::string& text) {
  const auto parsed = cs::util::parse_env_unsigned(text);
  if (!parsed || *parsed == 0) return std::nullopt;
  return parsed;
}

unsigned env_count(const char* name, unsigned fallback) {
  const auto text = cs::util::env_text(name);
  if (!text) return fallback;
  const auto parsed = parse_count(*text);
  if (!parsed) {
    std::fprintf(stderr, "csbench: %s\n",
                 cs::util::env_malformed(name, *text, "a positive integer")
                     .c_str());
    return fallback;
  }
  return *parsed;
}

std::string default_bench_dir() {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory("build/bench", ec)) return "build/bench";
  return "bench";
}

const char* compiler_id() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cs;

  std::string tag = "local";
  std::string out_path;
  std::string check_path;
  bool list_only = false;
  csbench::RunnerOptions runner;
  runner.bench_dir = default_bench_dir();
  runner.reps = env_count("CS_BENCH_REPS", 3);
  runner.domains = env_count("CS_DOMAINS", 120);
  runner.seed = env_count("CS_SEED", 2013);
  runner.threads =
      env_count("CS_THREADS", std::thread::hardware_concurrency());
  if (runner.threads == 0) runner.threads = 1;
  csbench::CheckOptions check_options;
  check_options.floor_pct = env_count("CS_BENCH_CHECK_PCT", 50);
  std::vector<std::string> filters;
  if (const auto spec = util::env_text("CS_BENCH_FILTER"))
    filters = csbench::split_filters(*spec);

  auto next_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "csbench: %s needs a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };
  auto next_count = [&](int& i, const char* flag) -> unsigned {
    const std::string text = next_value(i, flag);
    const auto parsed = parse_count(text);
    if (!parsed) {
      std::fprintf(stderr, "csbench: %s wants a positive integer, got '%s'\n",
                   flag, text.c_str());
      std::exit(2);
    }
    return *parsed;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench-dir") {
      runner.bench_dir = next_value(i, "--bench-dir");
    } else if (arg == "--tag") {
      tag = next_value(i, "--tag");
    } else if (arg == "--out") {
      out_path = next_value(i, "--out");
    } else if (arg == "--check") {
      check_path = next_value(i, "--check");
    } else if (arg == "--reps") {
      runner.reps = next_count(i, "--reps");
    } else if (arg == "--filter") {
      for (auto& f : csbench::split_filters(next_value(i, "--filter")))
        filters.push_back(std::move(f));
    } else if (arg == "--domains") {
      runner.domains = next_count(i, "--domains");
    } else if (arg == "--seed") {
      runner.seed = next_count(i, "--seed");
    } else if (arg == "--threads") {
      runner.threads = next_count(i, "--threads");
    } else if (arg == "--floor") {
      check_options.floor_pct = next_count(i, "--floor");
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "csbench: unknown option '%s'\n%s", arg.c_str(),
                   kUsage);
      return 2;
    }
  }

  std::string error;

  // ---- check mode -------------------------------------------------------
  if (!check_path.empty()) {
    std::ifstream file{check_path, std::ios::binary};
    if (!file) {
      std::fprintf(stderr, "csbench: cannot read '%s'\n", check_path.c_str());
      return 2;
    }
    const std::string text{std::istreambuf_iterator<char>{file},
                           std::istreambuf_iterator<char>{}};
    const auto baseline = csbench::parse_manifest(text);
    if (!baseline) {
      std::fprintf(stderr, "csbench: '%s' is not a BENCH_* manifest\n",
                   check_path.c_str());
      return 2;
    }
    // Re-run under the recorded shape so medians are comparable.
    if (baseline->machine.domains > 0) runner.domains = baseline->machine.domains;
    if (baseline->machine.seed > 0) runner.seed = baseline->machine.seed;
    if (baseline->machine.threads > 0) runner.threads = baseline->machine.threads;
    if (baseline->reps > 0) runner.reps = baseline->reps;
    std::printf(
        "csbench --check %s: %zu benches, %zu reps, domains=%llu "
        "seed=%llu threads=%u floor=%.0f%%\n",
        check_path.c_str(), baseline->benches.size(), runner.reps,
        static_cast<unsigned long long>(runner.domains),
        static_cast<unsigned long long>(runner.seed), runner.threads,
        check_options.floor_pct);

    csbench::Manifest fresh;
    fresh.tag = baseline->tag;
    fresh.machine = {runner.threads, runner.domains, runner.seed,
                     compiler_id()};
    fresh.reps = runner.reps;
    int regressions = 0;
    for (const auto& bench : baseline->benches) {
      const std::string binary = runner.bench_dir + "/" + bench.name;
      const auto stats =
          csbench::run_bench(binary, bench.name, runner, &error);
      if (!stats) {
        std::fprintf(stderr, "csbench: %s\n", error.c_str());
        return 2;
      }
      fresh.benches.push_back(*stats);
      const auto outcome =
          csbench::check_bench(bench, stats->wall.median, check_options);
      std::printf("  %-34s base %9.3f ms  now %9.3f ms  limit %9.3f ms  %s\n",
                  bench.name.c_str(), outcome.baseline_ms, outcome.fresh_ms,
                  outcome.limit_ms, outcome.regressed ? "REGRESSED" : "ok");
      if (outcome.regressed) ++regressions;
    }
    if (!out_path.empty()) {
      std::ofstream out{out_path, std::ios::binary | std::ios::trunc};
      out << csbench::render_manifest(fresh);
      if (!out.good()) {
        std::fprintf(stderr, "csbench: cannot write '%s'\n", out_path.c_str());
        return 2;
      }
      std::printf("wrote fresh manifest to %s\n", out_path.c_str());
    }
    if (regressions > 0) {
      std::printf("csbench: %d bench(es) regressed\n", regressions);
      return 1;
    }
    std::printf("csbench: no regressions\n");
    return 0;
  }

  // ---- record mode ------------------------------------------------------
  const auto discovered = csbench::discover_benches(runner.bench_dir, &error);
  if (!discovered) {
    std::fprintf(stderr, "csbench: %s\n", error.c_str());
    return 2;
  }
  std::vector<std::string> selected;
  for (const auto& name : *discovered)
    if (csbench::matches_filter(name, filters)) selected.push_back(name);
  if (list_only) {
    for (const auto& name : selected) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (selected.empty()) {
    std::fprintf(stderr, "csbench: no benches in '%s' match the filter\n",
                 runner.bench_dir.c_str());
    return 2;
  }

  csbench::Manifest manifest;
  manifest.tag = tag;
  manifest.machine = {runner.threads, runner.domains, runner.seed,
                      compiler_id()};
  manifest.reps = runner.reps;
  std::printf(
      "csbench: %zu benches, %zu reps (+%zu warmup), domains=%llu seed=%llu "
      "threads=%u\n",
      selected.size(), runner.reps, runner.warmup,
      static_cast<unsigned long long>(runner.domains),
      static_cast<unsigned long long>(runner.seed), runner.threads);
  for (const auto& name : selected) {
    const std::string binary = runner.bench_dir + "/" + name;
    const auto stats = csbench::run_bench(binary, name, runner, &error);
    if (!stats) {
      std::fprintf(stderr, "csbench: %s\n", error.c_str());
      return 2;
    }
    std::printf("  %-34s median %9.3f ms  min %9.3f ms  iqr %7.3f ms\n",
                name.c_str(), stats->wall.median, stats->wall.min,
                stats->wall.iqr);
    manifest.benches.push_back(*stats);
  }
  const std::string path =
      out_path.empty() ? "BENCH_" + tag + ".json" : out_path;
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << csbench::render_manifest(manifest);
  if (!out.good()) {
    std::fprintf(stderr, "csbench: cannot write '%s'\n", path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
