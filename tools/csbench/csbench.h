#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// csbench: the perf-trajectory orchestrator.
///
/// Every bench binary already writes a CS_BENCH_JSON sidecar
/// (obs::RunReport) describing one run. csbench turns those one-shot
/// sidecars into a *trajectory*: it discovers the bench binaries in a
/// build tree, runs a selected subset N repetitions each (first warm-up
/// run discarded), aggregates min/median/IQR per bench and per stage, and
/// writes a repo-root `BENCH_<tag>.json` manifest. `csbench --check
/// BENCH_<tag>.json` re-runs the manifest's benches under the recorded
/// machine shape (domains, seed, threads) and exits non-zero when a
/// median wall time regresses beyond a noise-aware threshold — the
/// larger of an IQR-derived band and a floor percentage, so CI machines
/// don't flap on scheduler noise. See DESIGN.md §11 for the workflow.
///
/// Split lib/CLI like cslint: everything here is process-spawn-free and
/// unit-testable over fixture sidecars; `run_bench`/`discover_benches`
/// do the actual process work.
namespace cs::csbench {

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Order statistics over a set of repetition samples.
struct Stats {
  std::size_t reps = 0;
  double min = 0.0;
  double median = 0.0;
  double iqr = 0.0;  ///< p75 - p25, the noise band the check threshold uses
};

/// min/median/IQR of `samples` (copies and sorts; empty input = zeros).
Stats aggregate(std::vector<double> samples);

/// One parsed RunReport sidecar: the whole-run wall time plus per-stage
/// span totals in sidecar order.
struct Sample {
  double wall_ms = 0.0;
  std::vector<std::pair<std::string, double>> stage_total_ms;
};

/// Reads the fields above out of a sidecar document. nullopt when the
/// text is not JSON or has no numeric wall_ms.
std::optional<Sample> parse_sidecar(std::string_view json_text);

struct StageStats {
  std::string name;
  Stats stats;
};

/// One bench's aggregated repetitions.
struct BenchStats {
  std::string name;  ///< binary name, e.g. "bench_table1_cloud_share"
  Stats wall;
  std::vector<StageStats> stages;  ///< first-seen order across samples
};

/// Aggregates repetition samples; stages missing from some repetitions
/// are aggregated over the repetitions that saw them.
BenchStats aggregate_bench(std::string name,
                           const std::vector<Sample>& samples);

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// The machine/workload shape a manifest was recorded under. --check
/// re-runs under the same shape so medians are comparable.
struct Machine {
  unsigned threads = 0;
  std::uint64_t domains = 0;
  std::uint64_t seed = 0;
  std::string compiler;
};

struct Manifest {
  std::string tag;
  Machine machine;
  std::size_t reps = 0;
  std::vector<BenchStats> benches;  ///< sorted by name
};

std::string render_manifest(const Manifest& manifest);
std::optional<Manifest> parse_manifest(std::string_view json_text);

// ---------------------------------------------------------------------------
// Regression check
// ---------------------------------------------------------------------------

struct CheckOptions {
  /// Minimum tolerated regression in percent. The default is sized for
  /// cross-machine CI comparisons of small smoke workloads.
  double floor_pct = 50.0;
  /// The IQR-derived band: iqr_mult * baseline IQR, as a fraction of the
  /// baseline median. Wins over the floor on genuinely noisy benches.
  double iqr_mult = 3.0;
};

struct CheckOutcome {
  std::string bench;
  double baseline_ms = 0.0;
  double fresh_ms = 0.0;
  double limit_ms = 0.0;  ///< baseline * (1 + threshold)
  bool regressed = false;
};

/// Applies the noise-aware threshold to one bench: regressed when the
/// fresh median exceeds baseline * (1 + max(floor_pct, IQR band) / 100).
/// A baseline median of 0 never regresses (nothing to compare against).
CheckOutcome check_bench(const BenchStats& baseline, double fresh_median_ms,
                         const CheckOptions& options);

// ---------------------------------------------------------------------------
// Runner (process-spawning half; exercised by the perf-smoke CI job)
// ---------------------------------------------------------------------------

struct RunnerOptions {
  std::string bench_dir;               ///< where the bench_* binaries live
  std::size_t reps = 3;                ///< measured repetitions
  std::size_t warmup = 1;              ///< leading runs discarded
  std::uint64_t domains = 0;           ///< CS_DOMAINS for children, 0 = unset
  std::uint64_t seed = 0;              ///< CS_SEED for children, 0 = unset
  unsigned threads = 0;                ///< CS_THREADS for children, 0 = unset
};

/// Executable names matching bench_* under `bench_dir`, sorted.
/// bench_micro (the google-benchmark suite, self-timing) is excluded.
/// Returns nullopt and sets `error` when the directory is unreadable.
std::optional<std::vector<std::string>> discover_benches(
    const std::string& bench_dir, std::string* error);

/// True when `name` matches any comma-separated substring filter (an
/// empty filter list matches everything).
bool matches_filter(std::string_view name,
                    const std::vector<std::string>& filters);

/// Splits "table1,fig5" into {"table1", "fig5"}; empty pieces dropped.
std::vector<std::string> split_filters(std::string_view spec);

/// Runs one bench binary warmup+reps times with CS_BENCH_JSON pointed at
/// a scratch file, parses each sidecar, and aggregates the measured reps.
/// Returns nullopt and sets `error` when the child fails or a sidecar
/// cannot be parsed.
std::optional<BenchStats> run_bench(const std::string& binary_path,
                                    const std::string& name,
                                    const RunnerOptions& options,
                                    std::string* error);

}  // namespace cs::csbench
