#include "csbench/csbench.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>

#include "util/json.h"

namespace cs::csbench {
namespace {

namespace fs = std::filesystem;

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void json_escape_into(std::string& out, std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

std::string fmt_ms(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void append_stats(std::string& out, const Stats& stats) {
  out += "{\"reps\": " + std::to_string(stats.reps);
  out += ", \"min\": " + fmt_ms(stats.min);
  out += ", \"median\": " + fmt_ms(stats.median);
  out += ", \"iqr\": " + fmt_ms(stats.iqr);
  out += "}";
}

bool parse_stats(const util::JsonValue* v, Stats* out) {
  if (v == nullptr || !v->is_object()) return false;
  const auto* reps = v->find("reps");
  const auto* min = v->find("min");
  const auto* median = v->find("median");
  const auto* iqr = v->find("iqr");
  if (!median || !median->is_number()) return false;
  out->reps = reps ? static_cast<std::size_t>(reps->number_or(0.0)) : 0;
  out->min = min ? min->number_or(0.0) : 0.0;
  out->median = median->number;
  out->iqr = iqr ? iqr->number_or(0.0) : 0.0;
  return true;
}

/// Single-quote shell escaping: ' -> '\'' inside a '...' span. Paths with
/// quotes are pathological, but a bench dir under /tmp can be anything.
std::string shell_quote(std::string_view text) {
  std::string out = "'";
  for (char c : text) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

}  // namespace

Stats aggregate(std::vector<double> samples) {
  Stats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.reps = samples.size();
  stats.min = samples.front();
  stats.median = sorted_quantile(samples, 0.5);
  stats.iqr = sorted_quantile(samples, 0.75) - sorted_quantile(samples, 0.25);
  return stats;
}

std::optional<Sample> parse_sidecar(std::string_view json_text) {
  const auto parsed = util::parse_json(json_text);
  if (!parsed) return std::nullopt;
  const auto* wall = parsed->find("wall_ms");
  if (!wall || !wall->is_number()) return std::nullopt;
  Sample sample;
  sample.wall_ms = wall->number;
  if (const auto* stages = parsed->find("stages"); stages && stages->is_array())
    for (const auto& stage : stages->items) {
      const auto* name = stage.find("name");
      const auto* total = stage.find("total_ms");
      if (name && name->is_string() && total && total->is_number())
        sample.stage_total_ms.emplace_back(name->text, total->number);
    }
  return sample;
}

BenchStats aggregate_bench(std::string name,
                           const std::vector<Sample>& samples) {
  BenchStats bench;
  bench.name = std::move(name);
  std::vector<double> walls;
  walls.reserve(samples.size());
  std::vector<std::string> stage_order;
  std::map<std::string, std::vector<double>> stage_samples;
  for (const auto& sample : samples) {
    walls.push_back(sample.wall_ms);
    for (const auto& [stage, total_ms] : sample.stage_total_ms) {
      auto [it, inserted] = stage_samples.try_emplace(stage);
      if (inserted) stage_order.push_back(stage);
      it->second.push_back(total_ms);
    }
  }
  bench.wall = aggregate(std::move(walls));
  for (const auto& stage : stage_order)
    bench.stages.push_back({stage, aggregate(stage_samples[stage])});
  return bench;
}

std::string render_manifest(const Manifest& manifest) {
  std::string out;
  out += "{\n  \"tag\": \"";
  json_escape_into(out, manifest.tag);
  out += "\",\n  \"machine\": {\"threads\": ";
  out += std::to_string(manifest.machine.threads);
  out += ", \"domains\": " + std::to_string(manifest.machine.domains);
  out += ", \"seed\": " + std::to_string(manifest.machine.seed);
  out += ", \"compiler\": \"";
  json_escape_into(out, manifest.machine.compiler);
  out += "\"},\n  \"reps\": " + std::to_string(manifest.reps);
  out += ",\n  \"benches\": [";
  bool first_bench = true;
  for (const auto& bench : manifest.benches) {
    if (!first_bench) out += ',';
    first_bench = false;
    out += "\n    {\"name\": \"";
    json_escape_into(out, bench.name);
    out += "\",\n     \"wall_ms\": ";
    append_stats(out, bench.wall);
    out += ",\n     \"stages\": [";
    bool first_stage = true;
    for (const auto& stage : bench.stages) {
      if (!first_stage) out += ',';
      first_stage = false;
      out += "\n       {\"name\": \"";
      json_escape_into(out, stage.name);
      out += "\", \"total_ms\": ";
      append_stats(out, stage.stats);
      out += "}";
    }
    out += "\n     ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::optional<Manifest> parse_manifest(std::string_view json_text) {
  const auto parsed = util::parse_json(json_text);
  if (!parsed || !parsed->is_object()) return std::nullopt;
  Manifest manifest;
  manifest.tag = parsed->find("tag") ? std::string{parsed->find("tag")
                                                       ->text_or("")}
                                     : std::string{};
  if (const auto* machine = parsed->find("machine");
      machine && machine->is_object()) {
    manifest.machine.threads = static_cast<unsigned>(
        machine->find("threads") ? machine->find("threads")->number_or(0.0)
                                 : 0.0);
    manifest.machine.domains = static_cast<std::uint64_t>(
        machine->find("domains") ? machine->find("domains")->number_or(0.0)
                                 : 0.0);
    manifest.machine.seed = static_cast<std::uint64_t>(
        machine->find("seed") ? machine->find("seed")->number_or(0.0) : 0.0);
    if (const auto* compiler = machine->find("compiler"))
      manifest.machine.compiler = compiler->text_or("");
  }
  if (const auto* reps = parsed->find("reps"))
    manifest.reps = static_cast<std::size_t>(reps->number_or(0.0));
  const auto* benches = parsed->find("benches");
  if (!benches || !benches->is_array()) return std::nullopt;
  for (const auto& entry : benches->items) {
    BenchStats bench;
    const auto* name = entry.find("name");
    if (!name || !name->is_string()) return std::nullopt;
    bench.name = name->text;
    if (!parse_stats(entry.find("wall_ms"), &bench.wall)) return std::nullopt;
    if (const auto* stages = entry.find("stages");
        stages && stages->is_array())
      for (const auto& stage : stages->items) {
        StageStats ss;
        const auto* stage_name = stage.find("name");
        if (!stage_name || !stage_name->is_string()) continue;
        ss.name = stage_name->text;
        if (parse_stats(stage.find("total_ms"), &ss.stats))
          bench.stages.push_back(std::move(ss));
      }
    manifest.benches.push_back(std::move(bench));
  }
  return manifest;
}

CheckOutcome check_bench(const BenchStats& baseline, double fresh_median_ms,
                         const CheckOptions& options) {
  CheckOutcome outcome;
  outcome.bench = baseline.name;
  outcome.baseline_ms = baseline.wall.median;
  outcome.fresh_ms = fresh_median_ms;
  if (baseline.wall.median <= 0.0) return outcome;  // nothing to compare
  const double iqr_pct =
      options.iqr_mult * baseline.wall.iqr / baseline.wall.median * 100.0;
  const double threshold_pct = std::max(options.floor_pct, iqr_pct);
  outcome.limit_ms = baseline.wall.median * (1.0 + threshold_pct / 100.0);
  outcome.regressed = fresh_median_ms > outcome.limit_ms;
  return outcome;
}

std::optional<std::vector<std::string>> discover_benches(
    const std::string& bench_dir, std::string* error) {
  std::error_code ec;
  std::vector<std::string> names;
  for (fs::directory_iterator it(bench_dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.rfind("bench_", 0) != 0) continue;
    if (name == "bench_micro") continue;  // google-benchmark, self-timing
    if (name.find('.') != std::string::npos) continue;  // .o, .d, ...
    const auto perms = it->status(ec).permissions();
    if ((perms & fs::perms::owner_exec) == fs::perms::none) continue;
    names.push_back(name);
  }
  if (ec) {
    if (error) *error = "cannot read bench dir '" + bench_dir + "': " +
                        ec.message();
    return std::nullopt;
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> split_filters(std::string_view spec) {
  std::vector<std::string> filters;
  std::stringstream stream{std::string{spec}};
  std::string piece;
  while (std::getline(stream, piece, ','))
    if (!piece.empty()) filters.push_back(piece);
  return filters;
}

bool matches_filter(std::string_view name,
                    const std::vector<std::string>& filters) {
  if (filters.empty()) return true;
  for (const auto& filter : filters)
    if (name.find(filter) != std::string_view::npos) return true;
  return false;
}

std::optional<BenchStats> run_bench(const std::string& binary_path,
                                    const std::string& name,
                                    const RunnerOptions& options,
                                    std::string* error) {
  std::error_code ec;
  const fs::path sidecar =
      fs::temp_directory_path(ec) / ("csbench-" + name + ".json");
  if (ec) {
    if (error) *error = "no temp directory: " + ec.message();
    return std::nullopt;
  }
  std::string env;
  if (options.domains > 0)
    env += "CS_DOMAINS=" + std::to_string(options.domains) + " ";
  if (options.seed > 0) env += "CS_SEED=" + std::to_string(options.seed) + " ";
  if (options.threads > 0)
    env += "CS_THREADS=" + std::to_string(options.threads) + " ";
  const std::string command = env + "CS_BENCH_JSON=" +
                              shell_quote(sidecar.string()) + " " +
                              shell_quote(binary_path) + " >/dev/null 2>&1";
  std::vector<Sample> samples;
  const std::size_t total = options.warmup + options.reps;
  for (std::size_t rep = 0; rep < total; ++rep) {
    fs::remove(sidecar, ec);
    const int status = std::system(command.c_str());  // NOLINT
    if (status != 0) {
      if (error)
        *error = name + ": exited with status " + std::to_string(status);
      return std::nullopt;
    }
    if (rep < options.warmup) continue;  // discard warm-up runs
    std::ifstream file{sidecar, std::ios::binary};
    if (!file) {
      if (error) *error = name + ": wrote no sidecar (not a cs bench?)";
      return std::nullopt;
    }
    const std::string text{std::istreambuf_iterator<char>{file},
                           std::istreambuf_iterator<char>{}};
    const auto sample = parse_sidecar(text);
    if (!sample) {
      if (error) *error = name + ": unparseable sidecar";
      return std::nullopt;
    }
    samples.push_back(*sample);
  }
  fs::remove(sidecar, ec);
  return aggregate_bench(name, samples);
}

}  // namespace cs::csbench
