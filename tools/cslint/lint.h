#pragma once

#include <filesystem>
#include <string>
#include <vector>

/// cs-lint: CloudScope's in-repo invariant linter.
///
/// The library's correctness contracts — byte-identical output at any
/// CS_THREADS, fault decisions that are pure functions of (seed, kind,
/// key), one home for CS_* env parsing, all library output through
/// obs::log — are conventions the compiler cannot check. cs-lint checks
/// them mechanically with a comment/string/raw-string-aware token
/// scanner and a registry of project-invariant checks:
///
///   D1  determinism: rand/srand, std::random_device, time()/clock(),
///       gettimeofday, and the std::chrono wall/steady clocks are banned
///       in src/ outside the allowlist (src/obs/ timing, src/snap/
///       backoff & deadlines, src/util/rng seeding).
///   E1  env hygiene: getenv/setenv/putenv/unsetenv only in
///       src/util/env.cpp; everything else goes through util::env.
///   L1  logging: std::cout/cerr/clog, printf/puts, and
///       fprintf/fputs/fwrite aimed at stdout/stderr are banned in
///       library code under src/ (obs::log is the one sink); fine in
///       examples/, bench/, tests/.
///   C1  shared state: mutable namespace-scope (or class-static)
///       non-const, non-atomic variables in src/ are flagged unless
///       annotated — they are cross-thread determinism hazards.
///   V1  doc drift: every CS_* knob referenced by the tree must appear
///       in README.md, and every CS_* knob README documents must still
///       be referenced somewhere.
///   S1  header hygiene: #pragma once present, no `using namespace`
///       in headers.
///   A1  suppression hygiene: inline allows must name known checks,
///       carry a non-empty reason, and actually suppress something.
///
/// Inline suppression: a comment of the form
///     NOLINT-style marker: "cslint:" "allow(D1): reason text"
/// on the finding's line or the line above suppresses matching checks
/// on that line. Suppressed findings are still counted and reported.
namespace cs::lint {

struct Source {
  std::string path;  // repo-relative, '/'-separated
  std::string text;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string check;    // "D1", "E1", "L1", "C1", "V1", "S1", "A1"
  std::string message;
  bool suppressed = false;
  std::string reason;   // suppression reason when suppressed
};

/// Run every check over the given sources. Sources whose path ends in
/// .h/.hpp/.cc/.cpp get the token checks; README.md and build/CI metadata
/// (CMakeLists.txt, *.yml, *.cmake) participate only in the V1 CS_*
/// cross-reference. Findings come back sorted by (file, line, check).
std::vector<Finding> lint(const std::vector<Source>& sources);

/// Load lintable sources from disk: each entry of `paths` (relative to
/// `root`) is a file or a directory walked recursively for C++ sources;
/// README.md, the root CMakeLists.txt, and .github/workflows/*.yml are
/// added automatically for V1. Hidden directories and build*/ trees are
/// skipped. Returns false and sets `error` on I/O failure.
bool collect_sources(const std::filesystem::path& root,
                     const std::vector<std::string>& paths,
                     std::vector<Source>* out, std::string* error);

std::size_t count_unsuppressed(const std::vector<Finding>& findings);

/// `file:line: [check] message` lines for unsuppressed findings plus a
/// one-line summary (suppressed findings are counted in the summary).
std::string render_text(const std::vector<Finding>& findings);

/// Machine-readable shape:
/// {"findings":[{file,line,check,message,suppressed,reason},...],
///  "total":N,"suppressed":M,"unsuppressed":K}
std::string render_json(const std::vector<Finding>& findings);

}  // namespace cs::lint
