#pragma once

#include <filesystem>
#include <string>
#include <vector>

/// cs-lint: CloudScope's in-repo invariant linter.
///
/// The library's correctness contracts — byte-identical output at any
/// CS_THREADS, fault decisions that are pure functions of (seed, kind,
/// key), one home for CS_* env parsing, all library output through
/// obs::log — are conventions the compiler cannot check. cs-lint checks
/// them mechanically with a comment/string/raw-string-aware token
/// scanner and a registry of project-invariant checks:
///
///   D1  determinism: rand/srand, std::random_device, time()/clock(),
///       gettimeofday, and the std::chrono wall/steady clocks are banned
///       in src/ outside the allowlist (src/obs/ timing, src/snap/
///       backoff & deadlines, src/util/rng seeding).
///   E1  env hygiene: getenv/setenv/putenv/unsetenv only in
///       src/util/env.cpp; everything else goes through util::env.
///   L1  logging: std::cout/cerr/clog, printf/puts, and
///       fprintf/fputs/fwrite aimed at stdout/stderr are banned in
///       library code under src/ (obs::log is the one sink); fine in
///       examples/, bench/, tests/.
///   C1  shared state: mutable namespace-scope (or class-static)
///       non-const, non-atomic variables in src/ are flagged unless
///       annotated — they are cross-thread determinism hazards.
///   G1  layering: the include graph must respect the module DAG
///       (util < obs < exec < fault < snap < the protocol band < the
///       analysis band < netio < core); back-edges, same-rank module
///       cycles, and file-level include cycles all fail.
///   K1  knob registry: every CS_* knob the code references must be
///       registered in src/util/knobs.def, every registered knob must
///       still be referenced (by name or Knob enum id) and documented
///       in README.md, and README/DESIGN must not mention unregistered
///       knobs. #define'd CS_* macros and "CS_FOO_…" prefix mentions
///       are exempt. (Subsumes the old V1 doc-drift check.)
///   B1  reactor hygiene: no sleep-family calls anywhere in src/netio/,
///       and inline lambdas handed to Reactor::add_fd / run_after must
///       not take locks or issue blocking syscalls — they run on the
///       event-loop thread.
///   S1  header hygiene: #pragma once present, no `using namespace`
///       in headers.
///   A1  suppression hygiene: inline allows must name known checks,
///       carry a non-empty reason, and actually suppress something.
///
/// Inline suppression: a comment of the form
///     NOLINT-style marker: "cslint:" "allow(D1): reason text"
/// on the finding's line or the line above suppresses matching checks
/// on that line. Suppressed findings are still counted and reported.
namespace cs::lint {

struct Source {
  std::string path;  // repo-relative, '/'-separated
  std::string text;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string check;    // "B1", "C1", "D1", "E1", "G1", "K1", "L1", "S1", "A1"
  std::string message;
  bool suppressed = false;
  std::string reason;   // suppression reason when suppressed
};

/// Run every check over the given sources. Sources whose path ends in
/// .h/.hpp/.cc/.cpp get the token checks and the G1 include graph;
/// README.md, DESIGN.md, src/util/knobs.def, and build/CI metadata
/// (CMakeLists.txt, *.yml, *.cmake) participate only in the K1 CS_*
/// cross-reference. K1 is skipped entirely when the corpus has no
/// knobs.def (partial fixture corpora). Findings come back sorted by
/// (file, line, check).
std::vector<Finding> lint(const std::vector<Source>& sources);

/// Load lintable sources from disk: each entry of `paths` (relative to
/// `root`) is a file or a directory walked recursively for C++ sources;
/// README.md, DESIGN.md, src/util/knobs.def, the root CMakeLists.txt, and
/// .github/workflows/* are added automatically for K1. Hidden directories
/// and build*/ trees are skipped. Returns false and sets `error` on I/O
/// failure.
bool collect_sources(const std::filesystem::path& root,
                     const std::vector<std::string>& paths,
                     std::vector<Source>* out, std::string* error);

std::size_t count_unsuppressed(const std::vector<Finding>& findings);

/// `file:line: [check] message` lines for unsuppressed findings plus a
/// one-line summary (suppressed findings are counted in the summary).
std::string render_text(const std::vector<Finding>& findings);

/// Machine-readable shape:
/// {"findings":[{file,line,check,message,suppressed,reason},...],
///  "total":N,"suppressed":M,"unsuppressed":K}
std::string render_json(const std::vector<Finding>& findings);

/// GitHub Actions workflow commands — one
/// `::error file=...,line=...,title=cslint CHECK::message` per
/// unsuppressed finding (so CI annotates the diff) plus the text summary
/// line. Values are %-escaped per the workflow-command rules.
std::string render_github(const std::vector<Finding>& findings);

}  // namespace cs::lint
