#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cslint/lint.h"

namespace {

constexpr const char* kUsage =
    "usage: cslint [--format=text|json|github] [--json] [--root DIR]\n"
    "              [paths...]\n"
    "\n"
    "Lints CloudScope sources against the project invariants (D1\n"
    "determinism, E1 env hygiene, L1 logging, C1 shared state, G1 module\n"
    "layering, K1 knob registry, B1 reactor hygiene, S1 header hygiene,\n"
    "A1 suppression hygiene). Paths are relative to --root (default: the\n"
    "current directory); directories are walked recursively. With no\n"
    "paths: src tools examples bench tests. --format=github emits one\n"
    "::error workflow command per finding for CI annotations; --json is\n"
    "shorthand for --format=json. Exits 0 when clean, 1 on unsuppressed\n"
    "findings, 2 on usage or I/O errors.\n";

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      format = "json";
    } else if (std::strncmp(arg.c_str(), "--format=", 9) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "github") {
        std::fprintf(stderr, "cslint: unknown format '%s'\n%s",
                     format.c_str(), kUsage);
        return 2;
      }
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fputs("cslint: --root needs a directory\n", stderr);
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cslint: unknown option '%s'\n%s", arg.c_str(),
                   kUsage);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty())
    paths = {"src", "tools", "examples", "bench", "tests"};

  std::vector<cs::lint::Source> sources;
  std::string error;
  if (!cs::lint::collect_sources(root, paths, &sources, &error)) {
    std::fprintf(stderr, "cslint: %s\n", error.c_str());
    return 2;
  }
  const std::vector<cs::lint::Finding> findings = cs::lint::lint(sources);
  const std::string rendered = format == "json"
                                   ? cs::lint::render_json(findings)
                                   : format == "github"
                                         ? cs::lint::render_github(findings)
                                         : cs::lint::render_text(findings);
  std::fputs(rendered.c_str(), stdout);
  return cs::lint::count_unsuppressed(findings) == 0 ? 0 : 1;
}
