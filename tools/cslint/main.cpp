#include <cstdio>
#include <string>
#include <vector>

#include "cslint/lint.h"

namespace {

constexpr const char* kUsage =
    "usage: cslint [--json] [--root DIR] [paths...]\n"
    "\n"
    "Lints CloudScope sources against the project invariants (D1\n"
    "determinism, E1 env hygiene, L1 logging, C1 shared state, V1 doc\n"
    "drift, S1 header hygiene, A1 suppression hygiene). Paths are\n"
    "relative to --root (default: the current directory); directories\n"
    "are walked recursively. With no paths: src tools examples bench\n"
    "tests. Exits 0 when clean, 1 on unsuppressed findings, 2 on usage\n"
    "or I/O errors.\n";

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fputs("cslint: --root needs a directory\n", stderr);
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cslint: unknown option '%s'\n%s", arg.c_str(),
                   kUsage);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty())
    paths = {"src", "tools", "examples", "bench", "tests"};

  std::vector<cs::lint::Source> sources;
  std::string error;
  if (!cs::lint::collect_sources(root, paths, &sources, &error)) {
    std::fprintf(stderr, "cslint: %s\n", error.c_str());
    return 2;
  }
  const std::vector<cs::lint::Finding> findings = cs::lint::lint(sources);
  const std::string rendered = json ? cs::lint::render_json(findings)
                                    : cs::lint::render_text(findings);
  std::fputs(rendered.c_str(), stdout);
  return cs::lint::count_unsuppressed(findings) == 0 ? 0 : 1;
}
