#include "cslint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

namespace cs::lint {
namespace {

// ---------------------------------------------------------------------------
// Scanner: blank out comments, string literals, char literals, and raw
// strings so the token checks only ever see code, while collecting the
// comment text per line (suppressions live there). The blanked copy keeps
// every newline, so offsets map 1:1 onto line numbers.
// ---------------------------------------------------------------------------

struct Stripped {
  std::string code;                    // raw with non-code blanked to spaces
  std::map<int, std::string> comments; // 1-based line -> comment text
};

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// The identifier run immediately before a '"' decides raw-string-ness:
// exactly R, u8R, uR, UR, or LR.
bool is_raw_prefix(std::string_view text, std::size_t quote) {
  std::size_t begin = quote;
  while (begin > 0 && is_word(text[begin - 1])) --begin;
  const std::string_view run = text.substr(begin, quote - begin);
  return run == "R" || run == "u8R" || run == "uR" || run == "UR" ||
         run == "LR";
}

Stripped strip(std::string_view raw) {
  Stripped out;
  out.code.assign(raw.size(), ' ');
  int line = 1;
  std::size_t i = 0;
  auto note_comment = [&](char c) {
    if (c != '\n' && c != '\r') out.comments[line].push_back(c);
  };
  while (i < raw.size()) {
    const char c = raw[i];
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
      while (i < raw.size() && raw[i] != '\n') note_comment(raw[i++]);
    } else if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
      i += 2;
      while (i + 1 < raw.size() && !(raw[i] == '*' && raw[i + 1] == '/')) {
        if (raw[i] == '\n') {
          out.code[i] = '\n';
          ++line;
        } else {
          note_comment(raw[i]);
        }
        ++i;
      }
      i = std::min(i + 2, raw.size());
    } else if (c == '"' && is_raw_prefix(raw, i)) {
      std::size_t d = i + 1;
      while (d < raw.size() && raw[d] != '(') ++d;
      const std::string closer =
          ")" + std::string(raw.substr(i + 1, d - i - 1)) + "\"";
      std::size_t end = raw.find(closer, d);
      end = (end == std::string_view::npos) ? raw.size()
                                            : end + closer.size();
      for (; i < end; ++i)
        if (raw[i] == '\n') {
          out.code[i] = '\n';
          ++line;
        }
    } else if (c == '"' || (c == '\'' && (i == 0 || !is_word(raw[i - 1])))) {
      const char close = c;
      ++i;
      while (i < raw.size() && raw[i] != close && raw[i] != '\n') {
        if (raw[i] == '\\') ++i;
        ++i;
      }
      if (i < raw.size() && raw[i] == close) ++i;
    } else {
      out.code[i] = c;
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer over the blanked code. Identifiers/numbers become word tokens;
// "::" and "->" stay fused (the checks care about member access and
// qualification); everything else is single-char punctuation. Tokens on
// preprocessor lines (including backslash continuations) are marked.
// ---------------------------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;
  bool preproc = false;
};

std::vector<Tok> tokenize(std::string_view code) {
  std::vector<Tok> toks;
  int line = 1;
  bool preproc = false;
  bool line_has_content = false;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      const bool continued = preproc && !toks.empty() &&
                             toks.back().text == "\\" &&
                             toks.back().line == line;
      if (!continued) preproc = false;
      line_has_content = false;
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && !line_has_content) preproc = true;
    line_has_content = true;
    if (is_word(c)) {
      std::size_t j = i;
      while (j < code.size() && is_word(code[j])) ++j;
      toks.push_back({std::string(code.substr(i, j - i)), line, preproc});
      i = j;
    } else if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      toks.push_back({"::", line, preproc});
      i += 2;
    } else if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      toks.push_back({"->", line, preproc});
      i += 2;
    } else {
      toks.push_back({std::string(1, c), line, preproc});
      ++i;
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool is_cpp_source(std::string_view path) {
  return ends_with(path, ".h") || ends_with(path, ".hpp") ||
         ends_with(path, ".cc") || ends_with(path, ".cpp");
}

bool is_header(std::string_view path) {
  return ends_with(path, ".h") || ends_with(path, ".hpp");
}

bool in_src(std::string_view path) { return starts_with(path, "src/"); }

// D1 allowlist: obs/ measures wall time by design, snap/ owns retry
// backoff and stage deadlines, util/rng is where seeds are minted, and
// netio's reactor is an event loop whose epoll timeouts and retransmit
// deadlines are real monotonic time by definition — transport timing is
// explicitly outside the determinism contract (answer bytes stay a pure
// function of the seed). Only the reactor core is sanctioned; the rest
// of src/netio/ must route through obs::steady_now_us() or annotate.
bool d1_exempt(std::string_view path) {
  return starts_with(path, "src/obs/") || starts_with(path, "src/snap/") ||
         starts_with(path, "src/util/rng") ||
         starts_with(path, "src/netio/reactor");
}

// K1 code scope: everything whose CS_* mentions count as *references* to
// a knob. tests/ are excluded so fixture corpora can mention fake knobs;
// the registry and the docs are the other side of the cross-check, not
// references.
bool k1_code_scope(std::string_view path) {
  return !starts_with(path, "tests/") && !ends_with(path, "README.md") &&
         !ends_with(path, "DESIGN.md") && !ends_with(path, "knobs.def");
}

// ---------------------------------------------------------------------------
// Suppressions: a comment containing the marker (written here split so
// this very file cannot suppress anything by accident)
//     "cslint:" + "allow(D1,C1): reason"
// suppresses the named checks on its own line and the line below. The
// reason is mandatory; unknown check ids and allows that suppress nothing
// are A1 findings themselves.
// ---------------------------------------------------------------------------

const std::set<std::string, std::less<>> kKnownChecks = {
    "B1", "C1", "D1", "E1", "G1", "K1", "L1", "S1"};

struct Allow {
  int line = 0;
  std::vector<std::string> checks;
  std::string reason;
  bool used = false;
};

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<Allow> parse_allows(const std::map<int, std::string>& comments) {
  const std::string marker = std::string("cslint:") + "allow(";
  std::vector<Allow> allows;
  for (const auto& [line, text] : comments) {
    std::size_t pos = 0;
    while ((pos = text.find(marker, pos)) != std::string::npos) {
      const std::size_t open = pos + marker.size();
      const std::size_t close = text.find(')', open);
      if (close == std::string::npos) break;
      Allow allow;
      allow.line = line;
      std::stringstream list{text.substr(open, close - open)};
      std::string id;
      while (std::getline(list, id, ',')) {
        id = trim(id);
        if (!id.empty()) allow.checks.push_back(id);
      }
      std::size_t after = close + 1;
      if (after < text.size() && text[after] == ':')
        allow.reason = trim(text.substr(after + 1));
      allows.push_back(std::move(allow));
      pos = close;
    }
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Per-file token checks
// ---------------------------------------------------------------------------

struct FileReport {
  std::vector<Finding> findings;  // pre-suppression
  std::vector<Allow> allows;
};

void add(FileReport& report, const std::string& file, int line,
         const char* check, std::string message) {
  Finding finding;
  finding.file = file;
  finding.line = line;
  finding.check = check;
  finding.message = std::move(message);
  report.findings.push_back(std::move(finding));
}

const std::set<std::string, std::less<>> kD1Plain = {
    "srand",        "random_device",         "gettimeofday", "random_shuffle",
    "system_clock", "high_resolution_clock", "steady_clock"};
const std::set<std::string, std::less<>> kD1Call = {"rand", "time", "clock"};

const std::set<std::string, std::less<>> kE1 = {
    "getenv", "secure_getenv", "setenv", "putenv", "unsetenv"};

const std::set<std::string, std::less<>> kL1Stream = {"cout", "cerr", "clog"};
const std::set<std::string, std::less<>> kL1Call = {"printf", "puts",
                                                    "putchar", "vprintf"};
const std::set<std::string, std::less<>> kL1FileCall = {"fprintf", "fputs",
                                                        "fwrite", "fputc"};

bool is_member_access(const std::vector<Tok>& toks, std::size_t i) {
  return i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

// `long time(int);` declares a member/function named time; `x = time(0)`
// calls the libc one. A preceding identifier (other than a keyword that
// can start an expression) means declaration, not call.
bool is_declaration_name(const std::vector<Tok>& toks, std::size_t i) {
  if (i == 0) return false;
  const std::string& prev = toks[i - 1].text;
  if (!is_word(prev[0])) return false;
  return prev != "return" && prev != "co_return" && prev != "co_yield" &&
         prev != "co_await" && prev != "throw";
}

bool next_is(const std::vector<Tok>& toks, std::size_t i,
             std::string_view text) {
  return i + 1 < toks.size() && toks[i + 1].text == text;
}

// Does the argument list opening at toks[open]=='(' mention stdout/stderr?
bool args_mention_tty(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == "(") ++depth;
    if (toks[j].text == ")" && --depth == 0) break;
    if (toks[j].text == "stderr" || toks[j].text == "stdout") return true;
  }
  return false;
}

void check_tokens(const std::string& path, const std::vector<Tok>& toks,
                  FileReport& report) {
  const bool d1 = in_src(path) && !d1_exempt(path);
  const bool e1 = in_src(path) && path != "src/util/env.cpp";
  const bool l1 = in_src(path);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    const int line = toks[i].line;
    if (d1 && !is_member_access(toks, i)) {
      if (kD1Plain.count(t)) {
        add(report, path, line, "D1",
            "nondeterminism source '" + t +
                "' banned in src/ (seed through util::Rng / "
                "exec::ShardedRng; wall-clock timing belongs in obs/)");
      } else if (kD1Call.count(t) && next_is(toks, i, "(") &&
                 !is_declaration_name(toks, i)) {
        add(report, path, line, "D1",
            "call to '" + t +
                "()' banned in src/: output must be a pure function of "
                "the seed, not of the clock or the C PRNG");
      }
    }
    if (e1 && kE1.count(t) && !is_member_access(toks, i)) {
      add(report, path, line, "E1",
          "'" + t +
              "' outside src/util/env.cpp: all CS_* environment access "
              "goes through util::env so parsing stays strict and uniform");
    }
    if (l1) {
      if (kL1Stream.count(t) && !is_member_access(toks, i)) {
        add(report, path, line, "L1",
            "'std::" + t +
                "' in library code: route output through obs::log "
                "(examples/, bench/, tests/ may print directly)");
      } else if (kL1Call.count(t) && next_is(toks, i, "(") &&
                 !is_member_access(toks, i)) {
        add(report, path, line, "L1",
            "'" + t + "' in library code: route output through obs::log");
      } else if (kL1FileCall.count(t) && next_is(toks, i, "(") &&
                 !is_member_access(toks, i) && args_mention_tty(toks, i + 1)) {
        add(report, path, line, "L1",
            "'" + t +
                "' aimed at stdout/stderr in library code: route output "
                "through obs::log");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C1: mutable namespace-scope (and class-static) state. A brace-kind
// stack tells namespace scope apart from type bodies and function
// bodies; declaration segments at namespace scope that survive the
// skip-list (functions, types, using/typedef/extern/template, anything
// const/constexpr/atomic) are shared mutable state.
// ---------------------------------------------------------------------------

enum class ScopeKind { kNamespace, kType, kBlock, kInit };

bool segment_has(const std::vector<Tok>& seg, std::string_view word) {
  for (const auto& t : seg)
    if (t.text == word) return true;
  return false;
}

ScopeKind classify_brace(const std::vector<Tok>& seg) {
  bool saw_parens = false;
  for (const auto& t : seg) {
    if (t.text == "namespace") return ScopeKind::kNamespace;
    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum")
      return ScopeKind::kType;
    if (t.text == "=") return ScopeKind::kInit;
    if (t.text == "(") saw_parens = true;
  }
  // `int x{1};` — a brace right after a declarator, no parens, no '='.
  if (!saw_parens && !seg.empty() && is_word(seg.back().text[0]))
    return ScopeKind::kInit;
  return ScopeKind::kBlock;
}

const std::set<std::string, std::less<>> kC1SkipWords = {
    "using",    "typedef",  "extern",        "template", "friend",
    "operator", "concept",  "static_assert", "requires", "namespace",
    "class",    "struct",   "union",         "enum",     "const",
    "constexpr","constinit", "consteval",    "asm"};

// Types that are internally synchronized (or synchronization primitives
// themselves): fine to hold at namespace scope. Mutex/CondVar/LockGuard
// are the annotated util::sync wrappers — the project's required spelling
// for locks, so C1 must know them as well as the std primitives they wrap.
bool is_sync_type(std::string_view word) {
  return starts_with(word, "atomic") || word == "mutex" ||
         word == "shared_mutex" || word == "recursive_mutex" ||
         word == "timed_mutex" || word == "once_flag" ||
         word == "condition_variable" || word == "Mutex" ||
         word == "CondVar" || word == "LockGuard";
}

bool segment_is_exempt(const std::vector<Tok>& seg) {
  for (const auto& t : seg) {
    if (kC1SkipWords.count(t.text)) return true;
    if (is_sync_type(t.text)) return true;
    if (t.text == "(") return true;  // '(' before '=': function decl/def
    if (t.text == "=") break;
  }
  return false;
}

std::string declared_name(const std::vector<Tok>& seg) {
  std::string name;
  for (const auto& t : seg) {
    if (t.text == "=" || t.text == "[") break;
    if (is_word(t.text[0]) && !std::isdigit(static_cast<unsigned char>(t.text[0])))
      name = t.text;
  }
  return name;
}

void analyze_segment(const std::string& path, const std::vector<Tok>& seg,
                     bool type_scope, FileReport& report) {
  if (seg.empty() || segment_is_exempt(seg)) return;
  if (type_scope && !segment_has(seg, "static")) return;
  const std::string name = declared_name(seg);
  if (name.empty()) return;
  const char* where = type_scope ? "class-static" : "namespace-scope";
  add(report, path, seg.front().line, "C1",
      std::string("mutable ") + where + " state '" + name +
          "': shared mutable globals break cross-thread determinism "
          "(make it const/atomic, or annotate why it is safe)");
}

void check_shared_state(const std::string& path, const std::vector<Tok>& toks,
                        FileReport& report) {
  if (!in_src(path)) return;
  std::vector<ScopeKind> stack;
  std::vector<Tok> segment;
  auto at_namespace = [&] {
    return std::all_of(stack.begin(), stack.end(), [](ScopeKind k) {
      return k == ScopeKind::kNamespace;
    });
  };
  auto at_type = [&] {
    if (stack.empty() || stack.back() != ScopeKind::kType) return false;
    return std::all_of(stack.begin(), stack.end() - 1, [](ScopeKind k) {
      return k == ScopeKind::kNamespace || k == ScopeKind::kType;
    });
  };
  for (const auto& tok : toks) {
    if (tok.preproc) continue;
    const bool analysis_scope = at_namespace() || at_type();
    if (tok.text == "{") {
      const ScopeKind kind =
          analysis_scope ? classify_brace(segment) : ScopeKind::kBlock;
      stack.push_back(kind);
      if (kind != ScopeKind::kInit) segment.clear();
    } else if (tok.text == "}") {
      if (!stack.empty()) {
        const ScopeKind kind = stack.back();
        stack.pop_back();
        if (kind != ScopeKind::kInit) segment.clear();
      }
    } else if (tok.text == ";") {
      if (analysis_scope) analyze_segment(path, segment, at_type(), report);
      segment.clear();
    } else if (analysis_scope) {
      segment.push_back(tok);
    }
  }
}

// ---------------------------------------------------------------------------
// S1: header hygiene
// ---------------------------------------------------------------------------

void check_header(const std::string& path, const std::vector<Tok>& toks,
                  FileReport& report) {
  if (!is_header(path)) return;
  bool pragma_once = false;
  for (std::size_t i = 0; i + 2 < toks.size() && !pragma_once; ++i)
    pragma_once = toks[i].text == "#" && toks[i + 1].text == "pragma" &&
                  toks[i + 2].text == "once";
  if (!pragma_once)
    add(report, path, 1, "S1", "header is missing '#pragma once'");
  for (std::size_t i = 0; i + 1 < toks.size(); ++i)
    if (toks[i].text == "using" && toks[i + 1].text == "namespace")
      add(report, path, toks[i].line, "S1",
          "'using namespace' in a header leaks into every includer");
}

// ---------------------------------------------------------------------------
// B1: reactor threads must never block. Two layers:
//  - sleep-family calls (sleep/usleep/nanosleep/sleep_for/sleep_until) are
//    banned anywhere under src/netio/ — every wait there is either the
//    reactor's own epoll timeout or a CondVar a *caller* thread parks on.
//  - an inline lambda handed to Reactor::add_fd or Reactor::run_after runs
//    on the reactor thread, so its body must not take an annotated lock
//    (LockGuard / std::lock_guard / unique_lock / scoped_lock / .lock())
//    or issue a blocking syscall (recv/recvfrom/recvmsg/poll/select/
//    accept): a handler that blocks stalls every timer and socket behind
//    it. Named handler *functions* registered as callbacks are outside
//    this syntactic net — the thread-safety annotation layer covers them.
// ---------------------------------------------------------------------------

const std::set<std::string, std::less<>> kB1Sleep = {
    "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until"};
const std::set<std::string, std::less<>> kB1Lock = {
    "LockGuard", "lock_guard", "unique_lock", "scoped_lock"};
const std::set<std::string, std::less<>> kB1Syscall = {
    "recv", "recvfrom", "recvmsg", "poll", "select", "accept"};

// Scans one inline-callback body (tokens in [begin, end)) for blockers.
void check_callback_body(const std::string& path, const std::vector<Tok>& toks,
                         std::size_t begin, std::size_t end, const char* sink,
                         FileReport& report) {
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& t = toks[i].text;
    if (kB1Lock.count(t)) {
      add(report, path, toks[i].line, "B1",
          "'" + t + "' inside a " + sink +
              " callback: reactor handlers run on the event loop and must "
              "not acquire locks (stage the work, or go lock-free)");
    } else if (t == "lock" && is_member_access(toks, i) &&
               next_is(toks, i, "(")) {
      add(report, path, toks[i].line, "B1",
          std::string("'.lock()' inside a ") + sink +
              " callback: reactor handlers must not acquire locks");
    } else if (kB1Syscall.count(t) && next_is(toks, i, "(") &&
               !is_member_access(toks, i) && !is_declaration_name(toks, i)) {
      add(report, path, toks[i].line, "B1",
          "blocking call '" + t + "()' inside a " + sink +
              " callback: reactor handlers must return immediately");
    }
  }
}

void check_reactor_blocking(const std::string& path,
                            const std::vector<Tok>& toks, FileReport& report) {
  if (!starts_with(path, "src/netio/")) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (kB1Sleep.count(t) && next_is(toks, i, "(") &&
        !is_declaration_name(toks, i)) {
      add(report, path, toks[i].line, "B1",
          "'" + t +
          "()' in src/netio/: nothing on the wire path sleeps — waits are "
          "the reactor's epoll timeout or a caller-side CondVar");
      continue;
    }
    if ((t != "add_fd" && t != "run_after") || !next_is(toks, i, "(")) continue;
    // Walk the balanced argument list; any '{'..'}' region inside it is an
    // inline lambda body that will run on the reactor thread.
    int parens = 0;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++parens;
      if (toks[j].text == ")" && --parens == 0) break;
      if (toks[j].text == "{") {
        int braces = 1;
        std::size_t body = j + 1;
        while (body < toks.size() && braces > 0) {
          if (toks[body].text == "{") ++braces;
          if (toks[body].text == "}") --braces;
          ++body;
        }
        check_callback_body(path, toks, j + 1, body - 1, t.c_str(), report);
        j = body - 1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// K1: the CS_* knob registry (src/util/knobs.def) vs the tree. Every CS_*
// name the code references must be registered, every registered knob must
// still be referenced (by env-var name or by its Knob enum id) and must be
// documented in README.md, and the docs must not mention unregistered
// knobs. CS_* tokens that are #define'd anywhere in the corpus (annotation
// macros, the CS_KNOB X-macro itself) and prefix mentions ("CS_NETIO_…",
// trailing underscore) are exempt.
// ---------------------------------------------------------------------------

struct KnobSite {
  std::string file;
  int line = 0;
};

// Whole-word CS_[A-Z0-9_]+ occurrences in raw text (strings and comments
// included: knob names mostly live inside string literals).
void collect_knobs(const Source& source, std::map<std::string, KnobSite>* out) {
  const std::string& text = source.text;
  int line = 1;
  for (std::size_t i = 0; i + 3 < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      continue;
    }
    if (text.compare(i, 3, "CS_") != 0) continue;
    if (i > 0 && is_word(text[i - 1])) continue;
    std::size_t j = i + 3;
    while (j < text.size() && is_word(text[j])) ++j;
    const std::string word = text.substr(i, j - i);
    const bool shouty = std::all_of(word.begin() + 3, word.end(), [](char c) {
      return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
    });
    if (word.size() > 3 && shouty && !out->count(word))
      (*out)[word] = {source.path, line};
    i = j - 1;
  }
}

struct RegistryEntry {
  std::string id;    // Knob enum constant, e.g. kThreads
  std::string name;  // env-var name, e.g. CS_THREADS
  int line = 0;
};

// Parses `CS_KNOB(id, "NAME", kind, "default", "doc")` entries, one per
// line, from the registry file's raw text. Comment lines never start with
// CS_KNOB, so no stripping is needed (and the names live inside string
// literals, which stripping would blank).
std::vector<RegistryEntry> parse_registry(const Source& registry,
                                          FileReport& report) {
  std::vector<RegistryEntry> entries;
  std::istringstream in{registry.text};
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::string text = trim(raw);
    if (!starts_with(text, "CS_KNOB(")) continue;
    RegistryEntry entry;
    entry.line = line;
    const std::size_t comma = text.find(',');
    if (comma != std::string::npos)
      entry.id = trim(text.substr(8, comma - 8));
    const std::size_t open = text.find('"', comma);
    const std::size_t close =
        open == std::string::npos ? open : text.find('"', open + 1);
    if (close != std::string::npos)
      entry.name = text.substr(open + 1, close - open - 1);
    if (entry.id.empty() || !starts_with(entry.name, "CS_")) {
      // "CS_" + "NAME" is split so this placeholder never registers as a
      // knob mention in cslint's own source.
      add(report, registry.path, line, "K1",
          std::string("malformed registry entry: want CS_KNOB(id, \"") +
              "CS_" + "NAME\", kind, \"default\", \"doc\")");
      continue;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

// Whole-word occurrence of `word` anywhere in `text`.
bool contains_word(std::string_view text, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_word(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

void check_knob_registry(const std::vector<Source>& sources,
                         const std::set<std::string>& macro_defined,
                         std::map<std::string, FileReport>& reports) {
  const Source* registry = nullptr;
  const Source* readme = nullptr;
  std::map<std::string, KnobSite> referenced;  // code-scope CS_* mentions
  std::map<std::string, KnobSite> in_docs;     // README/DESIGN mentions
  std::set<std::string> in_readme;
  for (const auto& source : sources) {
    if (ends_with(source.path, "knobs.def")) {
      registry = &source;
    } else if (ends_with(source.path, "README.md")) {
      readme = &source;
      std::map<std::string, KnobSite> only;
      collect_knobs(source, &only);
      for (const auto& [knob, site] : only) {
        in_readme.insert(knob);
        in_docs.emplace(knob, site);
      }
    } else if (ends_with(source.path, "DESIGN.md")) {
      collect_knobs(source, &in_docs);
    } else if (k1_code_scope(source.path)) {
      collect_knobs(source, &referenced);
    }
  }
  if (registry == nullptr) return;  // partial corpus (tests): K1 is off
  std::vector<RegistryEntry> entries =
      parse_registry(*registry, reports[registry->path]);
  std::set<std::string> registered;
  for (const auto& entry : entries) registered.insert(entry.name);

  auto exempt = [&](const std::string& word) {
    return word.back() == '_' ||  // prefix mention: "the CS_NETIO_ family"
           macro_defined.count(word) != 0;
  };

  for (const auto& [knob, site] : referenced)
    if (!registered.count(knob) && !exempt(knob))
      add(reports[site.file], site.file, site.line, "K1",
          "'" + knob +
              "' is referenced here but not registered in "
              "src/util/knobs.def — every knob declares itself there");
  for (const auto& [knob, site] : in_docs)
    if (!registered.count(knob) && !exempt(knob))
      add(reports[site.file], site.file, site.line, "K1",
          "'" + knob +
              "' is documented here but not registered in "
              "src/util/knobs.def (stale docs, or an unregistered knob)");
  for (const auto& entry : entries) {
    bool alive = false;
    for (const auto& source : sources) {
      if (!k1_code_scope(source.path) || ends_with(source.path, "knobs.def"))
        continue;
      if (contains_word(source.text, entry.name) ||
          (is_cpp_source(source.path) &&
           contains_word(source.text, entry.id))) {
        alive = true;
        break;
      }
    }
    if (!alive)
      add(reports[registry->path], registry->path, entry.line, "K1",
          "dead knob '" + entry.name +
              "': registered but neither its name nor its enum id '" +
              entry.id + "' appears anywhere in the tree");
    if (readme != nullptr && !in_readme.count(entry.name))
      add(reports[registry->path], registry->path, entry.line, "K1",
          "'" + entry.name +
              "' is registered but not documented in README.md's knob "
              "table");
  }
}

// ---------------------------------------------------------------------------
// G1: the include graph must respect the module layering DAG
//
//   util < obs < exec < fault < snap
//        < {dns, pcap, synth, cloud, net, internet, proto}
//        < {analysis, carto} < netio < core
//
// A file in src/<mod>/ may include project headers from its own module or
// any strictly lower rank; within a rank band, cross-module includes are
// fine as long as the band's module graph stays acyclic. File-level
// include cycles are flagged regardless of module.
// ---------------------------------------------------------------------------

int module_rank(std::string_view module) {
  if (module == "util") return 0;
  if (module == "obs") return 1;
  if (module == "exec") return 2;
  if (module == "fault") return 3;
  if (module == "snap") return 4;
  if (module == "dns" || module == "pcap" || module == "synth" ||
      module == "cloud" || module == "net" || module == "internet" ||
      module == "proto")
    return 5;
  if (module == "analysis" || module == "carto") return 6;
  if (module == "netio") return 7;
  if (module == "core") return 8;
  return -1;
}

// The first path component after src/, or "" when not under src/.
std::string module_of(std::string_view path) {
  if (!in_src(path)) return "";
  const std::string_view rest = path.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

struct IncludeEdge {
  std::string from_file;
  int line = 0;
  std::string target;  // the quoted include path, e.g. "util/sync.h"
};

// Quoted project includes per file (angle includes are system headers).
std::vector<IncludeEdge> collect_includes(const Source& source) {
  std::vector<IncludeEdge> edges;
  std::istringstream in{source.text};
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::string text = trim(raw);
    if (!starts_with(text, "#")) continue;
    const std::string after = trim(text.substr(1));
    if (!starts_with(after, "include")) continue;
    const std::size_t open = after.find('"');
    const std::size_t close =
        open == std::string::npos ? open : after.find('"', open + 1);
    if (close == std::string::npos) continue;
    edges.push_back({source.path, line, after.substr(open + 1, close - open - 1)});
  }
  return edges;
}

// Tarjan strongly-connected components over a small string graph; returns
// a component id per node. Edges inside a component of size > 1 lie on a
// cycle.
struct SccResult {
  std::map<std::string, int> component;
  std::vector<std::vector<std::string>> members;
};

SccResult strongly_connected(
    const std::map<std::string, std::set<std::string>>& graph) {
  SccResult out;
  std::map<std::string, int> index, low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  int next = 0;
  // Iterative Tarjan: (node, child-iterator position) frames.
  std::function<void(const std::string&)> visit = [&](const std::string& v) {
    index[v] = low[v] = next++;
    stack.push_back(v);
    on_stack.insert(v);
    const auto it = graph.find(v);
    if (it != graph.end()) {
      for (const auto& w : it->second) {
        if (!index.count(w)) {
          visit(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack.count(w)) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::string> comp;
      for (;;) {
        const std::string w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        out.component[w] = static_cast<int>(out.members.size());
        comp.push_back(w);
        if (w == v) break;
      }
      std::sort(comp.begin(), comp.end());
      out.members.push_back(std::move(comp));
    }
  };
  for (const auto& [node, _] : graph)
    if (!index.count(node)) visit(node);
  return out;
}

void check_layering(const std::vector<Source>& sources,
                    std::map<std::string, FileReport>& reports) {
  std::set<std::string> corpus;  // file paths, for resolving includes
  for (const auto& source : sources)
    if (is_cpp_source(source.path)) corpus.insert(source.path);

  std::vector<IncludeEdge> edges;
  for (const auto& source : sources) {
    if (!is_cpp_source(source.path) || !in_src(source.path)) continue;
    const auto file_edges = collect_includes(source);
    edges.insert(edges.end(), file_edges.begin(), file_edges.end());
  }

  // Rank violations + the same-rank module graph.
  std::map<std::string, std::set<std::string>> band_graph;
  std::map<std::string, IncludeEdge> band_site;  // "from>to" -> first site
  for (const auto& edge : edges) {
    const std::string from = module_of(edge.from_file);
    const std::string to = module_of("src/" + edge.target);
    if (from.empty() || to.empty() || from == to) continue;
    const int from_rank = module_rank(from);
    const int to_rank = module_rank(to);
    if (from_rank < 0 || to_rank < 0) continue;
    if (to_rank > from_rank) {
      add(reports[edge.from_file], edge.from_file, edge.line, "G1",
          "include climbs the layer DAG: " + from + " (rank " +
              std::to_string(from_rank) + ") must not include " +
              edge.target + " (" + to + ", rank " + std::to_string(to_rank) +
              ")");
    } else if (to_rank == from_rank) {
      band_graph[from].insert(to);
      band_graph.try_emplace(to);
      band_site.try_emplace(from + ">" + to, edge);
    }
  }

  // Same-rank bands must stay acyclic: flag every edge inside a cycle.
  const SccResult bands = strongly_connected(band_graph);
  for (const auto& [from, outs] : band_graph) {
    for (const auto& to : outs) {
      if (bands.component.at(from) != bands.component.at(to)) continue;
      const auto& comp = bands.members[bands.component.at(from)];
      if (comp.size() < 2) continue;
      std::string cycle;
      for (const auto& m : comp) {
        if (!cycle.empty()) cycle += ", ";
        cycle += m;
      }
      const IncludeEdge& site = band_site.at(from + ">" + to);
      add(reports[site.from_file], site.from_file, site.line, "G1",
          "same-rank include cycle among {" + cycle + "}: " + from +
              " -> " + to + " closes the loop — one of these modules must "
              "move down a layer");
    }
  }

  // File-level include cycles (headers including each other).
  std::map<std::string, std::set<std::string>> file_graph;
  std::map<std::string, IncludeEdge> file_site;
  for (const auto& edge : edges) {
    const std::string resolved = "src/" + edge.target;
    if (!corpus.count(resolved)) continue;
    file_graph[edge.from_file].insert(resolved);
    file_graph.try_emplace(resolved);
    file_site.try_emplace(edge.from_file + ">" + resolved, edge);
  }
  const SccResult files = strongly_connected(file_graph);
  for (const auto& comp : files.members) {
    if (comp.size() < 2) continue;
    std::string cycle;
    for (const auto& m : comp) {
      if (!cycle.empty()) cycle += " -> ";
      cycle += m;
    }
    // Report once, on the lexically-first edge that stays in the cycle.
    for (const auto& from : comp) {
      bool reported = false;
      for (const auto& to : file_graph.at(from)) {
        if (files.component.at(to) != files.component.at(from)) continue;
        const IncludeEdge& site = file_site.at(from + ">" + to);
        add(reports[site.from_file], site.from_file, site.line, "G1",
            "include cycle: " + cycle + " — break the loop with a forward "
            "declaration or an interface split");
        reported = true;
        break;
      }
      if (reported) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Suppression application + A1
// ---------------------------------------------------------------------------

void apply_suppressions(const std::string& path, FileReport& report) {
  for (auto& finding : report.findings) {
    for (auto& allow : report.allows) {
      if (allow.line != finding.line && allow.line != finding.line - 1)
        continue;
      if (std::find(allow.checks.begin(), allow.checks.end(),
                    finding.check) == allow.checks.end())
        continue;
      if (allow.reason.empty()) continue;  // reasonless: A1, no effect
      finding.suppressed = true;
      finding.reason = allow.reason;
      allow.used = true;
    }
  }
  for (const auto& allow : report.allows) {
    const std::string& file = path;
    bool all_known = true;
    for (const auto& check : allow.checks)
      if (!kKnownChecks.count(check)) {
        all_known = false;
        add(report, file, allow.line, "A1",
            "suppression names unknown check '" + check + "'");
      }
    if (allow.reason.empty())
      add(report, file, allow.line, "A1",
          "suppression must carry a reason: cslint:" +
              std::string("allow(...): <why this is safe>"));
    else if (!allow.used && all_known)
      add(report, file, allow.line, "A1",
          "unused suppression: no matching finding on this or the next line");
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> lint(const std::vector<Source>& sources) {
  std::map<std::string, FileReport> reports;
  std::set<std::string> macro_defined;  // #define'd CS_* names (K1-exempt)
  for (const auto& source : sources) {
    if (!is_cpp_source(source.path)) continue;
    const Stripped stripped = strip(source.text);
    const std::vector<Tok> toks = tokenize(stripped.code);
    for (std::size_t i = 0; i + 2 < toks.size(); ++i)
      if (toks[i].text == "#" && toks[i + 1].text == "define" &&
          starts_with(toks[i + 2].text, "CS_"))
        macro_defined.insert(toks[i + 2].text);
    FileReport& report = reports[source.path];
    check_tokens(source.path, toks, report);
    check_shared_state(source.path, toks, report);
    check_header(source.path, toks, report);
    check_reactor_blocking(source.path, toks, report);
    report.allows = parse_allows(stripped.comments);
  }
  check_knob_registry(sources, macro_defined, reports);
  check_layering(sources, reports);
  std::vector<Finding> all;
  for (auto& [path, report] : reports) {
    for (auto& finding : report.findings)
      if (finding.file.empty()) finding.file = path;
    apply_suppressions(path, report);
    all.insert(all.end(), report.findings.begin(), report.findings.end());
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.check, a.message) <
           std::tie(b.file, b.line, b.check, b.message);
  });
  return all;
}

bool collect_sources(const std::filesystem::path& root,
                     const std::vector<std::string>& paths,
                     std::vector<Source>* out, std::string* error) {
  namespace fs = std::filesystem;
  auto load = [&](const fs::path& file, const std::string& rel) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      if (error) *error = "cannot read " + file.string();
      return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    out->push_back({rel, text.str()});
    return true;
  };
  auto relative_slash = [&](const fs::path& p) {
    std::string rel = fs::relative(p, root).generic_string();
    return rel;
  };
  for (const auto& entry : paths) {
    const fs::path p = root / entry;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> files;
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (it->is_directory(ec) &&
            (starts_with(name, ".") || starts_with(name, "build"))) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file(ec) && is_cpp_source(name))
          files.push_back(it->path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files)
        if (!load(file, relative_slash(file))) return false;
    } else if (fs::is_regular_file(p, ec)) {
      if (!load(p, relative_slash(p))) return false;
    } else {
      if (error) *error = "no such file or directory: " + p.string();
      return false;
    }
  }
  // K1/G1 corpus: the knob registry, the knob documentation, and the
  // build/CI metadata that legitimately references knobs (CS_SANITIZE
  // lives in CMake and CI).
  for (const char* extra : {"README.md", "DESIGN.md", "CMakeLists.txt",
                            "src/util/knobs.def"}) {
    std::error_code ec;
    if (fs::is_regular_file(root / extra, ec))
      if (!load(root / extra, extra)) return false;
  }
  std::error_code ec;
  const fs::path workflows = root / ".github" / "workflows";
  if (fs::is_directory(workflows, ec)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(workflows, ec))
      if (entry.is_regular_file(ec)) files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto& file : files)
      if (!load(file, relative_slash(file))) return false;
  }
  return true;
}

std::size_t count_unsuppressed(const std::vector<Finding>& findings) {
  std::size_t n = 0;
  for (const auto& finding : findings)
    if (!finding.suppressed) ++n;
  return n;
}

std::string render_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const auto& finding : findings) {
    if (finding.suppressed) continue;
    out << finding.file << ':' << finding.line << ": [" << finding.check
        << "] " << finding.message << '\n';
  }
  const std::size_t unsuppressed = count_unsuppressed(findings);
  out << "cslint: " << findings.size() << " finding"
      << (findings.size() == 1 ? "" : "s") << " ("
      << (findings.size() - unsuppressed) << " suppressed, " << unsuppressed
      << " unsuppressed)\n";
  return out.str();
}

std::string render_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"findings\":[";
  bool first = true;
  for (const auto& finding : findings) {
    if (!first) out << ',';
    first = false;
    out << "{\"file\":\"" << json_escape(finding.file)
        << "\",\"line\":" << finding.line << ",\"check\":\""
        << json_escape(finding.check) << "\",\"message\":\""
        << json_escape(finding.message) << "\",\"suppressed\":"
        << (finding.suppressed ? "true" : "false") << ",\"reason\":\""
        << json_escape(finding.reason) << "\"}";
  }
  const std::size_t unsuppressed = count_unsuppressed(findings);
  out << "],\"total\":" << findings.size()
      << ",\"suppressed\":" << (findings.size() - unsuppressed)
      << ",\"unsuppressed\":" << unsuppressed << "}\n";
  return out.str();
}

namespace {

// GitHub workflow-command escaping: the message body escapes %, \r, \n;
// property values (file, title) additionally escape ':' and ','.
std::string gh_escape(std::string_view s, bool property) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      case ':': out += property ? "%3A" : ":"; break;
      case ',': out += property ? "%2C" : ","; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_github(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const auto& finding : findings) {
    if (finding.suppressed) continue;
    out << "::error file=" << gh_escape(finding.file, true)
        << ",line=" << finding.line << ",title=cslint "
        << gh_escape(finding.check, true)
        << "::" << gh_escape(finding.message, false) << '\n';
  }
  const std::size_t unsuppressed = count_unsuppressed(findings);
  out << "cslint: " << findings.size() << " finding"
      << (findings.size() == 1 ? "" : "s") << " ("
      << (findings.size() - unsuppressed) << " suppressed, " << unsuppressed
      << " unsuppressed)\n";
  return out.str();
}

}  // namespace cs::lint
