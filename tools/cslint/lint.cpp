#include "cslint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

namespace cs::lint {
namespace {

// ---------------------------------------------------------------------------
// Scanner: blank out comments, string literals, char literals, and raw
// strings so the token checks only ever see code, while collecting the
// comment text per line (suppressions live there). The blanked copy keeps
// every newline, so offsets map 1:1 onto line numbers.
// ---------------------------------------------------------------------------

struct Stripped {
  std::string code;                    // raw with non-code blanked to spaces
  std::map<int, std::string> comments; // 1-based line -> comment text
};

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// The identifier run immediately before a '"' decides raw-string-ness:
// exactly R, u8R, uR, UR, or LR.
bool is_raw_prefix(std::string_view text, std::size_t quote) {
  std::size_t begin = quote;
  while (begin > 0 && is_word(text[begin - 1])) --begin;
  const std::string_view run = text.substr(begin, quote - begin);
  return run == "R" || run == "u8R" || run == "uR" || run == "UR" ||
         run == "LR";
}

Stripped strip(std::string_view raw) {
  Stripped out;
  out.code.assign(raw.size(), ' ');
  int line = 1;
  std::size_t i = 0;
  auto note_comment = [&](char c) {
    if (c != '\n' && c != '\r') out.comments[line].push_back(c);
  };
  while (i < raw.size()) {
    const char c = raw[i];
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
      while (i < raw.size() && raw[i] != '\n') note_comment(raw[i++]);
    } else if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
      i += 2;
      while (i + 1 < raw.size() && !(raw[i] == '*' && raw[i + 1] == '/')) {
        if (raw[i] == '\n') {
          out.code[i] = '\n';
          ++line;
        } else {
          note_comment(raw[i]);
        }
        ++i;
      }
      i = std::min(i + 2, raw.size());
    } else if (c == '"' && is_raw_prefix(raw, i)) {
      std::size_t d = i + 1;
      while (d < raw.size() && raw[d] != '(') ++d;
      const std::string closer =
          ")" + std::string(raw.substr(i + 1, d - i - 1)) + "\"";
      std::size_t end = raw.find(closer, d);
      end = (end == std::string_view::npos) ? raw.size()
                                            : end + closer.size();
      for (; i < end; ++i)
        if (raw[i] == '\n') {
          out.code[i] = '\n';
          ++line;
        }
    } else if (c == '"' || (c == '\'' && (i == 0 || !is_word(raw[i - 1])))) {
      const char close = c;
      ++i;
      while (i < raw.size() && raw[i] != close && raw[i] != '\n') {
        if (raw[i] == '\\') ++i;
        ++i;
      }
      if (i < raw.size() && raw[i] == close) ++i;
    } else {
      out.code[i] = c;
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer over the blanked code. Identifiers/numbers become word tokens;
// "::" and "->" stay fused (the checks care about member access and
// qualification); everything else is single-char punctuation. Tokens on
// preprocessor lines (including backslash continuations) are marked.
// ---------------------------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;
  bool preproc = false;
};

std::vector<Tok> tokenize(std::string_view code) {
  std::vector<Tok> toks;
  int line = 1;
  bool preproc = false;
  bool line_has_content = false;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      const bool continued = preproc && !toks.empty() &&
                             toks.back().text == "\\" &&
                             toks.back().line == line;
      if (!continued) preproc = false;
      line_has_content = false;
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && !line_has_content) preproc = true;
    line_has_content = true;
    if (is_word(c)) {
      std::size_t j = i;
      while (j < code.size() && is_word(code[j])) ++j;
      toks.push_back({std::string(code.substr(i, j - i)), line, preproc});
      i = j;
    } else if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      toks.push_back({"::", line, preproc});
      i += 2;
    } else if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      toks.push_back({"->", line, preproc});
      i += 2;
    } else {
      toks.push_back({std::string(1, c), line, preproc});
      ++i;
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool is_cpp_source(std::string_view path) {
  return ends_with(path, ".h") || ends_with(path, ".hpp") ||
         ends_with(path, ".cc") || ends_with(path, ".cpp");
}

bool is_header(std::string_view path) {
  return ends_with(path, ".h") || ends_with(path, ".hpp");
}

bool in_src(std::string_view path) { return starts_with(path, "src/"); }

// D1 allowlist: obs/ measures wall time by design, snap/ owns retry
// backoff and stage deadlines, util/rng is where seeds are minted, and
// netio's reactor is an event loop whose epoll timeouts and retransmit
// deadlines are real monotonic time by definition — transport timing is
// explicitly outside the determinism contract (answer bytes stay a pure
// function of the seed). Only the reactor core is sanctioned; the rest
// of src/netio/ must route through obs::steady_now_us() or annotate.
bool d1_exempt(std::string_view path) {
  return starts_with(path, "src/obs/") || starts_with(path, "src/snap/") ||
         starts_with(path, "src/util/rng") ||
         starts_with(path, "src/netio/reactor");
}

// V1 corpus: everything that can legitimately reference a CS_* knob.
// tests/ are excluded so fixture corpora can mention fake knobs.
bool v1_scope(std::string_view path) {
  return !starts_with(path, "tests/") && !ends_with(path, "README.md");
}

// ---------------------------------------------------------------------------
// Suppressions: a comment containing the marker (written here split so
// this very file cannot suppress anything by accident)
//     "cslint:" + "allow(D1,C1): reason"
// suppresses the named checks on its own line and the line below. The
// reason is mandatory; unknown check ids and allows that suppress nothing
// are A1 findings themselves.
// ---------------------------------------------------------------------------

const std::set<std::string, std::less<>> kKnownChecks = {
    "D1", "E1", "L1", "C1", "V1", "S1"};

struct Allow {
  int line = 0;
  std::vector<std::string> checks;
  std::string reason;
  bool used = false;
};

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<Allow> parse_allows(const std::map<int, std::string>& comments) {
  const std::string marker = std::string("cslint:") + "allow(";
  std::vector<Allow> allows;
  for (const auto& [line, text] : comments) {
    std::size_t pos = 0;
    while ((pos = text.find(marker, pos)) != std::string::npos) {
      const std::size_t open = pos + marker.size();
      const std::size_t close = text.find(')', open);
      if (close == std::string::npos) break;
      Allow allow;
      allow.line = line;
      std::stringstream list{text.substr(open, close - open)};
      std::string id;
      while (std::getline(list, id, ',')) {
        id = trim(id);
        if (!id.empty()) allow.checks.push_back(id);
      }
      std::size_t after = close + 1;
      if (after < text.size() && text[after] == ':')
        allow.reason = trim(text.substr(after + 1));
      allows.push_back(std::move(allow));
      pos = close;
    }
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Per-file token checks
// ---------------------------------------------------------------------------

struct FileReport {
  std::vector<Finding> findings;  // pre-suppression
  std::vector<Allow> allows;
};

void add(FileReport& report, const std::string& file, int line,
         const char* check, std::string message) {
  Finding finding;
  finding.file = file;
  finding.line = line;
  finding.check = check;
  finding.message = std::move(message);
  report.findings.push_back(std::move(finding));
}

const std::set<std::string, std::less<>> kD1Plain = {
    "srand",        "random_device",         "gettimeofday", "random_shuffle",
    "system_clock", "high_resolution_clock", "steady_clock"};
const std::set<std::string, std::less<>> kD1Call = {"rand", "time", "clock"};

const std::set<std::string, std::less<>> kE1 = {
    "getenv", "secure_getenv", "setenv", "putenv", "unsetenv"};

const std::set<std::string, std::less<>> kL1Stream = {"cout", "cerr", "clog"};
const std::set<std::string, std::less<>> kL1Call = {"printf", "puts",
                                                    "putchar", "vprintf"};
const std::set<std::string, std::less<>> kL1FileCall = {"fprintf", "fputs",
                                                        "fwrite", "fputc"};

bool is_member_access(const std::vector<Tok>& toks, std::size_t i) {
  return i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

// `long time(int);` declares a member/function named time; `x = time(0)`
// calls the libc one. A preceding identifier (other than a keyword that
// can start an expression) means declaration, not call.
bool is_declaration_name(const std::vector<Tok>& toks, std::size_t i) {
  if (i == 0) return false;
  const std::string& prev = toks[i - 1].text;
  if (!is_word(prev[0])) return false;
  return prev != "return" && prev != "co_return" && prev != "co_yield" &&
         prev != "co_await" && prev != "throw";
}

bool next_is(const std::vector<Tok>& toks, std::size_t i,
             std::string_view text) {
  return i + 1 < toks.size() && toks[i + 1].text == text;
}

// Does the argument list opening at toks[open]=='(' mention stdout/stderr?
bool args_mention_tty(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == "(") ++depth;
    if (toks[j].text == ")" && --depth == 0) break;
    if (toks[j].text == "stderr" || toks[j].text == "stdout") return true;
  }
  return false;
}

void check_tokens(const std::string& path, const std::vector<Tok>& toks,
                  FileReport& report) {
  const bool d1 = in_src(path) && !d1_exempt(path);
  const bool e1 = in_src(path) && path != "src/util/env.cpp";
  const bool l1 = in_src(path);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    const int line = toks[i].line;
    if (d1 && !is_member_access(toks, i)) {
      if (kD1Plain.count(t)) {
        add(report, path, line, "D1",
            "nondeterminism source '" + t +
                "' banned in src/ (seed through util::Rng / "
                "exec::ShardedRng; wall-clock timing belongs in obs/)");
      } else if (kD1Call.count(t) && next_is(toks, i, "(") &&
                 !is_declaration_name(toks, i)) {
        add(report, path, line, "D1",
            "call to '" + t +
                "()' banned in src/: output must be a pure function of "
                "the seed, not of the clock or the C PRNG");
      }
    }
    if (e1 && kE1.count(t) && !is_member_access(toks, i)) {
      add(report, path, line, "E1",
          "'" + t +
              "' outside src/util/env.cpp: all CS_* environment access "
              "goes through util::env so parsing stays strict and uniform");
    }
    if (l1) {
      if (kL1Stream.count(t) && !is_member_access(toks, i)) {
        add(report, path, line, "L1",
            "'std::" + t +
                "' in library code: route output through obs::log "
                "(examples/, bench/, tests/ may print directly)");
      } else if (kL1Call.count(t) && next_is(toks, i, "(") &&
                 !is_member_access(toks, i)) {
        add(report, path, line, "L1",
            "'" + t + "' in library code: route output through obs::log");
      } else if (kL1FileCall.count(t) && next_is(toks, i, "(") &&
                 !is_member_access(toks, i) && args_mention_tty(toks, i + 1)) {
        add(report, path, line, "L1",
            "'" + t +
                "' aimed at stdout/stderr in library code: route output "
                "through obs::log");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C1: mutable namespace-scope (and class-static) state. A brace-kind
// stack tells namespace scope apart from type bodies and function
// bodies; declaration segments at namespace scope that survive the
// skip-list (functions, types, using/typedef/extern/template, anything
// const/constexpr/atomic) are shared mutable state.
// ---------------------------------------------------------------------------

enum class ScopeKind { kNamespace, kType, kBlock, kInit };

bool segment_has(const std::vector<Tok>& seg, std::string_view word) {
  for (const auto& t : seg)
    if (t.text == word) return true;
  return false;
}

ScopeKind classify_brace(const std::vector<Tok>& seg) {
  bool saw_parens = false;
  for (const auto& t : seg) {
    if (t.text == "namespace") return ScopeKind::kNamespace;
    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum")
      return ScopeKind::kType;
    if (t.text == "=") return ScopeKind::kInit;
    if (t.text == "(") saw_parens = true;
  }
  // `int x{1};` — a brace right after a declarator, no parens, no '='.
  if (!saw_parens && !seg.empty() && is_word(seg.back().text[0]))
    return ScopeKind::kInit;
  return ScopeKind::kBlock;
}

const std::set<std::string, std::less<>> kC1SkipWords = {
    "using",    "typedef",  "extern",        "template", "friend",
    "operator", "concept",  "static_assert", "requires", "namespace",
    "class",    "struct",   "union",         "enum",     "const",
    "constexpr","constinit", "consteval",    "asm"};

// Types that are internally synchronized (or synchronization primitives
// themselves): fine to hold at namespace scope.
bool is_sync_type(std::string_view word) {
  return starts_with(word, "atomic") || word == "mutex" ||
         word == "shared_mutex" || word == "recursive_mutex" ||
         word == "timed_mutex" || word == "once_flag" ||
         word == "condition_variable";
}

bool segment_is_exempt(const std::vector<Tok>& seg) {
  for (const auto& t : seg) {
    if (kC1SkipWords.count(t.text)) return true;
    if (is_sync_type(t.text)) return true;
    if (t.text == "(") return true;  // '(' before '=': function decl/def
    if (t.text == "=") break;
  }
  return false;
}

std::string declared_name(const std::vector<Tok>& seg) {
  std::string name;
  for (const auto& t : seg) {
    if (t.text == "=" || t.text == "[") break;
    if (is_word(t.text[0]) && !std::isdigit(static_cast<unsigned char>(t.text[0])))
      name = t.text;
  }
  return name;
}

void analyze_segment(const std::string& path, const std::vector<Tok>& seg,
                     bool type_scope, FileReport& report) {
  if (seg.empty() || segment_is_exempt(seg)) return;
  if (type_scope && !segment_has(seg, "static")) return;
  const std::string name = declared_name(seg);
  if (name.empty()) return;
  const char* where = type_scope ? "class-static" : "namespace-scope";
  add(report, path, seg.front().line, "C1",
      std::string("mutable ") + where + " state '" + name +
          "': shared mutable globals break cross-thread determinism "
          "(make it const/atomic, or annotate why it is safe)");
}

void check_shared_state(const std::string& path, const std::vector<Tok>& toks,
                        FileReport& report) {
  if (!in_src(path)) return;
  std::vector<ScopeKind> stack;
  std::vector<Tok> segment;
  auto at_namespace = [&] {
    return std::all_of(stack.begin(), stack.end(), [](ScopeKind k) {
      return k == ScopeKind::kNamespace;
    });
  };
  auto at_type = [&] {
    if (stack.empty() || stack.back() != ScopeKind::kType) return false;
    return std::all_of(stack.begin(), stack.end() - 1, [](ScopeKind k) {
      return k == ScopeKind::kNamespace || k == ScopeKind::kType;
    });
  };
  for (const auto& tok : toks) {
    if (tok.preproc) continue;
    const bool analysis_scope = at_namespace() || at_type();
    if (tok.text == "{") {
      const ScopeKind kind =
          analysis_scope ? classify_brace(segment) : ScopeKind::kBlock;
      stack.push_back(kind);
      if (kind != ScopeKind::kInit) segment.clear();
    } else if (tok.text == "}") {
      if (!stack.empty()) {
        const ScopeKind kind = stack.back();
        stack.pop_back();
        if (kind != ScopeKind::kInit) segment.clear();
      }
    } else if (tok.text == ";") {
      if (analysis_scope) analyze_segment(path, segment, at_type(), report);
      segment.clear();
    } else if (analysis_scope) {
      segment.push_back(tok);
    }
  }
}

// ---------------------------------------------------------------------------
// S1: header hygiene
// ---------------------------------------------------------------------------

void check_header(const std::string& path, const std::vector<Tok>& toks,
                  FileReport& report) {
  if (!is_header(path)) return;
  bool pragma_once = false;
  for (std::size_t i = 0; i + 2 < toks.size() && !pragma_once; ++i)
    pragma_once = toks[i].text == "#" && toks[i + 1].text == "pragma" &&
                  toks[i + 2].text == "once";
  if (!pragma_once)
    add(report, path, 1, "S1", "header is missing '#pragma once'");
  for (std::size_t i = 0; i + 1 < toks.size(); ++i)
    if (toks[i].text == "using" && toks[i + 1].text == "namespace")
      add(report, path, toks[i].line, "S1",
          "'using namespace' in a header leaks into every includer");
}

// ---------------------------------------------------------------------------
// V1: CS_* knobs referenced by the tree vs documented in README.md
// ---------------------------------------------------------------------------

struct KnobSite {
  std::string file;
  int line = 0;
};

// Whole-word CS_[A-Z0-9_]+ occurrences in raw text (strings and comments
// included: knob names mostly live inside string literals).
void collect_knobs(const Source& source, std::map<std::string, KnobSite>* out) {
  const std::string& text = source.text;
  int line = 1;
  for (std::size_t i = 0; i + 3 < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      continue;
    }
    if (text.compare(i, 3, "CS_") != 0) continue;
    if (i > 0 && is_word(text[i - 1])) continue;
    std::size_t j = i + 3;
    while (j < text.size() && is_word(text[j])) ++j;
    const std::string word = text.substr(i, j - i);
    const bool shouty = std::all_of(word.begin() + 3, word.end(), [](char c) {
      return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
    });
    if (word.size() > 3 && shouty && !out->count(word))
      (*out)[word] = {source.path, line};
    i = j - 1;
  }
}

void check_doc_drift(const std::vector<Source>& sources,
                     std::map<std::string, FileReport>& reports) {
  std::map<std::string, KnobSite> referenced;
  std::map<std::string, KnobSite> documented;
  const Source* readme = nullptr;
  for (const auto& source : sources) {
    if (ends_with(source.path, "README.md")) {
      readme = &source;
      collect_knobs(source, &documented);
    } else if (v1_scope(source.path)) {
      collect_knobs(source, &referenced);
    }
  }
  if (readme == nullptr) return;  // partial corpus (tests): nothing to check
  for (const auto& [knob, site] : referenced)
    if (!documented.count(knob))
      add(reports[site.file], site.file, site.line, "V1",
          "'" + knob + "' is referenced here but not documented in README.md");
  for (const auto& [knob, site] : documented)
    if (!referenced.count(knob))
      add(reports[site.file], site.file, site.line, "V1",
          "'" + knob +
              "' is documented in README.md but no longer referenced "
              "anywhere in the tree");
}

// ---------------------------------------------------------------------------
// Suppression application + A1
// ---------------------------------------------------------------------------

void apply_suppressions(const std::string& path, FileReport& report) {
  for (auto& finding : report.findings) {
    for (auto& allow : report.allows) {
      if (allow.line != finding.line && allow.line != finding.line - 1)
        continue;
      if (std::find(allow.checks.begin(), allow.checks.end(),
                    finding.check) == allow.checks.end())
        continue;
      if (allow.reason.empty()) continue;  // reasonless: A1, no effect
      finding.suppressed = true;
      finding.reason = allow.reason;
      allow.used = true;
    }
  }
  for (const auto& allow : report.allows) {
    const std::string& file = path;
    bool all_known = true;
    for (const auto& check : allow.checks)
      if (!kKnownChecks.count(check)) {
        all_known = false;
        add(report, file, allow.line, "A1",
            "suppression names unknown check '" + check + "'");
      }
    if (allow.reason.empty())
      add(report, file, allow.line, "A1",
          "suppression must carry a reason: cslint:" +
              std::string("allow(...): <why this is safe>"));
    else if (!allow.used && all_known)
      add(report, file, allow.line, "A1",
          "unused suppression: no matching finding on this or the next line");
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> lint(const std::vector<Source>& sources) {
  std::map<std::string, FileReport> reports;
  for (const auto& source : sources) {
    if (!is_cpp_source(source.path)) continue;
    const Stripped stripped = strip(source.text);
    const std::vector<Tok> toks = tokenize(stripped.code);
    FileReport& report = reports[source.path];
    check_tokens(source.path, toks, report);
    check_shared_state(source.path, toks, report);
    check_header(source.path, toks, report);
    report.allows = parse_allows(stripped.comments);
  }
  check_doc_drift(sources, reports);
  std::vector<Finding> all;
  for (auto& [path, report] : reports) {
    for (auto& finding : report.findings)
      if (finding.file.empty()) finding.file = path;
    apply_suppressions(path, report);
    all.insert(all.end(), report.findings.begin(), report.findings.end());
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.check, a.message) <
           std::tie(b.file, b.line, b.check, b.message);
  });
  return all;
}

bool collect_sources(const std::filesystem::path& root,
                     const std::vector<std::string>& paths,
                     std::vector<Source>* out, std::string* error) {
  namespace fs = std::filesystem;
  auto load = [&](const fs::path& file, const std::string& rel) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      if (error) *error = "cannot read " + file.string();
      return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    out->push_back({rel, text.str()});
    return true;
  };
  auto relative_slash = [&](const fs::path& p) {
    std::string rel = fs::relative(p, root).generic_string();
    return rel;
  };
  for (const auto& entry : paths) {
    const fs::path p = root / entry;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> files;
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (it->is_directory(ec) &&
            (starts_with(name, ".") || starts_with(name, "build"))) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file(ec) && is_cpp_source(name))
          files.push_back(it->path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files)
        if (!load(file, relative_slash(file))) return false;
    } else if (fs::is_regular_file(p, ec)) {
      if (!load(p, relative_slash(p))) return false;
    } else {
      if (error) *error = "no such file or directory: " + p.string();
      return false;
    }
  }
  // V1 corpus: the knob documentation plus the build/CI metadata that
  // legitimately references knobs (CS_SANITIZE lives in CMake and CI).
  for (const char* extra : {"README.md", "CMakeLists.txt"}) {
    std::error_code ec;
    if (fs::is_regular_file(root / extra, ec))
      if (!load(root / extra, extra)) return false;
  }
  std::error_code ec;
  const fs::path workflows = root / ".github" / "workflows";
  if (fs::is_directory(workflows, ec)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(workflows, ec))
      if (entry.is_regular_file(ec)) files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto& file : files)
      if (!load(file, relative_slash(file))) return false;
  }
  return true;
}

std::size_t count_unsuppressed(const std::vector<Finding>& findings) {
  std::size_t n = 0;
  for (const auto& finding : findings)
    if (!finding.suppressed) ++n;
  return n;
}

std::string render_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const auto& finding : findings) {
    if (finding.suppressed) continue;
    out << finding.file << ':' << finding.line << ": [" << finding.check
        << "] " << finding.message << '\n';
  }
  const std::size_t unsuppressed = count_unsuppressed(findings);
  out << "cslint: " << findings.size() << " finding"
      << (findings.size() == 1 ? "" : "s") << " ("
      << (findings.size() - unsuppressed) << " suppressed, " << unsuppressed
      << " unsuppressed)\n";
  return out.str();
}

std::string render_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"findings\":[";
  bool first = true;
  for (const auto& finding : findings) {
    if (!first) out << ',';
    first = false;
    out << "{\"file\":\"" << json_escape(finding.file)
        << "\",\"line\":" << finding.line << ",\"check\":\""
        << json_escape(finding.check) << "\",\"message\":\""
        << json_escape(finding.message) << "\",\"suppressed\":"
        << (finding.suppressed ? "true" : "false") << ",\"reason\":\""
        << json_escape(finding.reason) << "\"}";
  }
  const std::size_t unsuppressed = count_unsuppressed(findings);
  out << "],\"total\":" << findings.size()
      << ",\"suppressed\":" << (findings.size() - unsuppressed)
      << ",\"unsuppressed\":" << unsuppressed << "}\n";
  return out.str();
}

}  // namespace cs::lint
