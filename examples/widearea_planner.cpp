// Wide-area deployment planner: given a set of client cities, measure
// latency/throughput against every EC2 region (the §5.1 methodology) and
// recommend a k-region deployment with failure-tolerance notes (§5.2).
//
//   ./examples/widearea_planner [city ...]   (default: seattle boulder
//                                             london tokyo saopaulo)
#include <iostream>
#include <vector>

#include "analysis/isp.h"
#include "analysis/widearea.h"
#include "core/report.h"
#include "internet/model.h"
#include "internet/traceroute.h"
#include "internet/vantage.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace cs;

  std::vector<std::string> cities;
  for (int i = 1; i < argc; ++i) cities.emplace_back(argv[i]);
  if (cities.empty())
    cities = {"seattle", "boulder", "london", "tokyo", "saopaulo"};

  auto ec2 = cloud::Provider::make_ec2(2013);
  internet::WideAreaModel model{{.seed = 2013}};

  std::vector<internet::VantagePoint> clients;
  for (const auto& city : cities) {
    try {
      clients.push_back(internet::vantage_named(city));
    } catch (const std::invalid_argument&) {
      std::cerr << "unknown city '" << city << "', skipping\n";
    }
  }
  if (clients.empty()) {
    std::cerr << "no usable client cities\n";
    return 1;
  }

  std::vector<const cloud::Region*> regions;
  for (const auto& region : ec2.regions()) regions.push_back(&region);

  std::cout << "Measuring " << clients.size()
            << " client sites against 8 EC2 regions (1 day, 15-min "
               "rounds)...\n\n";
  const auto campaign =
      analysis::run_campaign(model, clients, regions, /*days=*/1.0);
  std::cout << core::render_fig9_10(analysis::average_matrix(campaign))
            << "\n";

  const auto k_results = analysis::optimal_k_regions(campaign);
  std::cout << core::render_fig12(k_results) << "\n";

  // Recommend the knee of the curve: the smallest k capturing 85% of the
  // achievable latency reduction.
  const double total_gain =
      k_results.front().avg_rtt_ms - k_results.back().avg_rtt_ms;
  std::size_t knee = 0;
  for (std::size_t k = 0; k < k_results.size(); ++k) {
    if (k_results.front().avg_rtt_ms - k_results[k].avg_rtt_ms >=
        0.85 * total_gain) {
      knee = k;
      break;
    }
  }
  std::cout << "Recommended deployment (" << knee + 1 << " region(s)):";
  for (const auto& region : k_results[knee].best_regions)
    std::cout << " " << region;
  std::cout << "\n\n";

  // Fault-tolerance check: what a busiest-downstream-ISP failure does.
  internet::AsTopology topology{ec2, 2013};
  const auto impacts = analysis::single_isp_failure_impact(
      ec2, topology, internet::planetlab_vantages(80));
  for (const auto& impact : impacts) {
    const bool in_plan =
        std::find(k_results[knee].best_regions.begin(),
                  k_results[knee].best_regions.end(),
                  impact.region) != k_results[knee].best_regions.end();
    if (!in_plan) continue;
    std::cout << util::fmt(
        "If {}'s busiest downstream ISP (AS{}) fails: {:.0f}% of clients "
        "lose a single-region deployment; {:.0f}% with failover via {}.\n",
        impact.region, impact.failed_asn,
        100.0 * impact.single_region_unreachable,
        100.0 * impact.multi_region_unreachable, impact.failover_region);
  }
  return 0;
}
