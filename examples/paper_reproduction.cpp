// One-shot reproduction driver: regenerates every table and figure of
// the paper from a single shared Study (much faster than running the 26
// bench binaries, which each rebuild their own universe) and writes each
// artifact to a file.
//
//   ./examples/paper_reproduction [output_dir] [domain_count]
//       [--checkpoint <dir>] [--resume] [--halt-after <stage>]
//       [--max-rss-mb <mb>]
//
// --checkpoint <dir>  snapshot each completed stage into <dir>
// --resume            reuse snapshots from --checkpoint / CS_CHECKPOINT
//                     (snapshotting implies resuming; the flag exists so
//                     `--resume` alone can point at CS_CHECKPOINT)
// --halt-after <st>   build through stage <st>, then exit 0 — a
//                     deterministic stand-in for "the run was killed
//                     here", used by the crash-resume CI job
// --max-rss-mb <mb>   exit 3 if peak RSS exceeded <mb> at the end of the
//                     run — the paper-scale CI job's memory-budget gate
//                     over the streaming pipeline
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/report.h"
#include "core/study.h"
#include "obs/report.h"
#include "util/env.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace cs;

  std::vector<std::string> positional;
  std::string checkpoint_dir;
  std::string halt_after;
  bool resume = false;
  long long max_rss_mb = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--max-rss-mb") {
      if (i + 1 >= argc) {
        std::cerr << "--max-rss-mb needs a megabyte count\n";
        return 2;
      }
      max_rss_mb = std::strtoll(argv[++i], nullptr, 10);
      if (max_rss_mb <= 0) {
        std::cerr << "--max-rss-mb needs a positive megabyte count\n";
        return 2;
      }
    } else if (arg == "--checkpoint") {
      if (i + 1 >= argc) {
        std::cerr << "--checkpoint needs a directory\n";
        return 2;
      }
      checkpoint_dir = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--halt-after") {
      if (i + 1 >= argc) {
        std::cerr << "--halt-after needs a stage name\n";
        return 2;
      }
      halt_after = argv[++i];
    } else {
      positional.emplace_back(arg);
    }
  }

  const std::filesystem::path dir =
      !positional.empty() ? positional[0] : "/tmp/cloudscope_paper";
  std::filesystem::create_directories(dir);

  core::StudyConfig config;
  config.world.domain_count =
      positional.size() > 1 ? std::strtoull(positional[1].c_str(), nullptr, 10)
                            : 1500;
  config.checkpoint_dir = checkpoint_dir;
  if (resume && checkpoint_dir.empty() &&
      !util::env_text("CS_CHECKPOINT")) {
    std::cerr << "--resume needs --checkpoint <dir> or CS_CHECKPOINT\n";
    return 2;
  }

  std::cout << "Reproducing all tables and figures over "
            << config.world.domain_count << " domains into " << dir.string()
            << " ...\n";
  core::Study study{config};

  if (!halt_after.empty()) {
    bool found = false;
    for (const auto& desc : core::Study::stage_table()) {
      study.build_stage(desc.name);
      if (halt_after == desc.name) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "--halt-after: unknown stage '" << halt_after << "'\n";
      return 2;
    }
    std::cout << "Halted after stage '" << halt_after
              << "' (simulated crash).\n";
    return 0;
  }

  std::size_t written = 0;
  auto emit = [&](const std::string& name, const std::string& text) {
    std::ofstream out{dir / name};
    out << text;
    ++written;
    std::cout << "  " << name << "\n";
  };

  emit("table01.txt", core::render_table1(study.capture()));
  emit("table02.txt", core::render_table2(study.capture()));
  emit("table03.txt", core::render_table3(study.cloud_usage()));
  emit("table04.txt", core::render_table4(study.cloud_usage()));
  emit("table05.txt", core::render_table5(study.capture()));
  emit("table06.txt", core::render_table6(study.capture()));
  emit("table07.txt", core::render_table7(study.patterns()));
  emit("table08.txt", core::render_table8(study));
  emit("table09.txt", core::render_table9(study.regions()));
  emit("table10.txt", core::render_table10(study));
  emit("table11.txt", core::render_table11(study));
  emit("table12.txt", core::render_table12(study.zone_study()));
  emit("table13.txt", core::render_table13(study.zone_study()));
  emit("table14.txt", core::render_table14(study.zone_study()));
  emit("table15.txt", core::render_table15(study));
  emit("table16.txt", core::render_table16(study.isp_study()));

  emit("fig03.txt", core::render_fig3(study.capture()));
  emit("fig04.txt", core::render_fig4(study.patterns()));
  emit("fig05.txt", core::render_fig5(study.patterns()));
  emit("fig06.txt", core::render_fig6(study.regions()));
  emit("fig07.txt", core::render_fig7(study));
  emit("fig08.txt", core::render_fig8(study.zone_study()));
  emit("fig09_10.txt",
       core::render_fig9_10(analysis::average_matrix(study.campaign())));
  {
    // Figure 11 needs a Boulder-focused series from the shared campaign
    // when Boulder is among the vantages; otherwise run a dedicated one.
    try {
      emit("fig11.txt", core::render_fig11(analysis::flapping_series(
                            study.campaign(), "boulder")));
    } catch (const std::invalid_argument&) {
      std::vector<internet::VantagePoint> boulder = {
          internet::vantage_named("boulder")};
      std::vector<const cloud::Region*> regions;
      for (const auto& region : study.world().ec2().regions())
        regions.push_back(&region);
      const auto campaign = analysis::run_campaign(
          study.wan_model(), boulder, regions, 3.0);
      emit("fig11.txt",
           core::render_fig11(analysis::flapping_series(campaign,
                                                         "boulder")));
    }
  }
  emit("fig12.txt",
       core::render_fig12(analysis::optimal_k_regions(study.campaign())));

  // Not a paper artifact: how much data the run lost along the way
  // (meaningful under CS_FAULT, all-zero otherwise).
  emit("data_quality.txt", core::render_data_quality(study));

  if (const auto& store = study.checkpoint_store())
    std::cout << util::fmt("resumed {} of {} stages from {}\n",
                           study.stages_resumed(),
                           core::Study::stage_table().size(),
                           store->dir().string());

  std::cout << util::fmt("\n{} artifacts written. Compare against the "
                         "paper with EXPERIMENTS.md.\n",
                         written);

  const auto usage = obs::resource_usage();
  std::cout << util::fmt("peak RSS: {} MB\n", usage.peak_rss_kb / 1024);
  if (max_rss_mb > 0 && usage.peak_rss_kb > max_rss_mb * 1024) {
    std::cerr << util::fmt(
        "peak RSS {} MB exceeded the --max-rss-mb budget of {} MB\n",
        usage.peak_rss_kb / 1024, max_rss_mb);
    return 3;
  }
  return 0;
}
