// Deployment audit: interrogate one domain exactly the way the paper's
// methodology does — zone-transfer attempt, wordlist enumeration,
// distributed lookups, CNAME heuristics, region attribution, and zone
// cartography — and print an availability-posture report.
//
//   ./examples/deployment_audit [domain]     (default: pinterest.com)
#include <iostream>
#include <set>

#include "analysis/dataset.h"
#include "analysis/patterns.h"
#include "analysis/regions.h"
#include "carto/combined.h"
#include "internet/model.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace cs;
  const std::string target = argc > 1 ? argv[1] : "pinterest.com";

  synth::WorldConfig world_config;
  world_config.domain_count = 400;
  synth::World world{world_config};
  if (!world.domain(target)) {
    std::cerr << target << " is not in this universe; try pinterest.com, "
                           "fc2.com, msn.com, amazon.com, ...\n";
    return 1;
  }

  std::cout << "Auditing " << target << " ...\n\n";
  // Run the dataset pipeline (restricted reporting to the one domain).
  analysis::DatasetBuilder builder{world, {.lookup_vantages = 4}};
  const auto dataset = builder.build();
  analysis::CloudRanges ranges{world.ec2(), world.azure()};
  const auto patterns = analysis::analyze_patterns(dataset, ranges);
  const auto regions = analysis::analyze_regions(dataset, ranges);

  carto::ProximityEstimator proximity{world.ec2(), {.seed = 7}};
  internet::WideAreaModel model{{.seed = 7}};
  carto::LatencyZoneEstimator latency{world.ec2(), model, {.seed = 7}};
  carto::CombinedZoneEstimator zones{proximity, latency};

  std::size_t audited = 0;
  std::set<std::string> domain_regions;
  std::set<int> domain_zones;
  for (std::size_t i = 0; i < dataset.cloud_subdomains.size(); ++i) {
    const auto& obs = dataset.cloud_subdomains[i];
    if (obs.domain.to_string() != target) continue;
    ++audited;
    const auto& det = patterns.detections[i];
    std::string front = det.vm_front      ? "VM front end"
                        : det.elb         ? "ELB front end"
                        : det.beanstalk   ? "Beanstalk"
                        : det.heroku      ? "Heroku"
                        : det.azure_tm    ? "Traffic Manager"
                        : det.azure_cs    ? "Cloud Service"
                        : det.cloudfront  ? "CloudFront"
                        : det.azure_cdn   ? "Azure CDN"
                                          : "unclassified";
    std::string region_list;
    for (const auto& region : regions.subdomain_regions[i]) {
      if (!region_list.empty()) region_list += ", ";
      region_list += region;
      domain_regions.insert(region);
    }
    std::set<int> sub_zones;
    for (const auto addr : obs.addresses) {
      const auto c = ranges.classify(addr);
      if (c.kind != analysis::IpClassification::Kind::kEc2) continue;
      if (const auto estimate = zones.estimate(addr, c.region);
          estimate.zone_label) {
        sub_zones.insert(*estimate.zone_label);
        domain_zones.insert(*estimate.zone_label);
      }
    }
    std::cout << util::fmt("  {}: {}; {} address(es); regions [{}]; {} "
                           "zone(s) identified\n",
                           obs.name.to_string(), front, obs.addresses.size(),
                           region_list, sub_zones.size());
  }

  std::cout << util::fmt(
      "\nVerdict: {} cloud subdomains across {} region(s) and {} zone(s).\n",
      audited, domain_regions.size(), domain_zones.size());
  if (domain_regions.size() <= 1)
    std::cout << "A single-region outage would take this service down — "
                 "the paper found 97% of EC2-using subdomains in this "
                 "position.\n";
  else
    std::cout << "Multi-region: tolerant to a single regional outage.\n";
  return 0;
}
