// Interchange demo: export a study's raw artifacts in the formats the
// rest of the ecosystem speaks — Bro/Zeek-style TSV logs for the capture
// and an RFC-1035 master file for a domain's zone — then re-import both
// to show the round trip is lossless.
//
//   ./examples/export_artifacts [output_dir] [--checkpoint <dir>] [--resume]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/study.h"
#include "dns/zonefile.h"
#include "proto/logfile.h"
#include "util/env.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace cs;

  std::vector<std::string> positional;
  std::string checkpoint_dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--checkpoint") {
      if (i + 1 >= argc) {
        std::cerr << "--checkpoint needs a directory\n";
        return 2;
      }
      checkpoint_dir = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else {
      positional.emplace_back(arg);
    }
  }
  const std::filesystem::path dir =
      !positional.empty() ? positional[0] : "/tmp/cloudscope_artifacts";
  std::filesystem::create_directories(dir);

  core::StudyConfig config;
  config.world.domain_count = 200;
  config.traffic.total_web_bytes = 4ull * 1024 * 1024;
  config.checkpoint_dir = checkpoint_dir;
  if (resume && checkpoint_dir.empty() && !util::env_text("CS_CHECKPOINT")) {
    std::cerr << "--resume needs --checkpoint <dir> or CS_CHECKPOINT\n";
    return 2;
  }
  core::Study study{config};

  // 1. The capture, as Zeek logs.
  const auto& logs = study.capture_logs();

  auto write = [&dir](const std::string& name, const std::string& text) {
    std::ofstream out{dir / name};
    out << text;
    std::cout << "wrote " << (dir / name).string() << " ("
              << text.size() << " bytes)\n";
  };
  write("conn.log", proto::to_conn_log(logs));
  write("http.log", proto::to_http_log(logs));
  write("ssl.log", proto::to_ssl_log(logs));

  // Round trip check.
  const auto reparsed = proto::parse_conn_log(proto::to_conn_log(logs));
  std::cout << util::fmt("conn.log round trip: {} of {} records\n",
                         reparsed.size(), logs.conns.size());

  // 2. A domain zone, as a master file pulled over AXFR-like access.
  auto& world = study.world();
  auto resolver = world.make_resolver(net::Ipv4(199, 16, 0, 10));
  for (const auto& domain : world.domains()) {
    if (!domain.axfr_open || !domain.cloud_using()) continue;
    const auto records = resolver.try_axfr(domain.name);
    if (!records) continue;
    // Rebuild a zone object from the transfer and serialize it.
    dns::SoaRecord soa;
    for (const auto& rr : *records)
      if (const auto* s = std::get_if<dns::SoaRecord>(&rr.data)) soa = *s;
    dns::Zone zone{domain.name, soa};
    for (const auto& rr : *records)
      if (rr.type() != dns::RrType::kSoa) zone.add(rr);
    const auto text = dns::to_zonefile(zone);
    write(domain.name.to_string() + ".zone", text);

    const auto parsed = dns::parse_zonefile(text);
    std::cout << util::fmt(
        "zone round trip: {} records, {} parse errors\n",
        parsed.zone ? parsed.zone->record_count() : 0,
        parsed.errors.size());
    break;  // one exemplar is enough
  }

  if (const auto& store = study.checkpoint_store())
    std::cout << util::fmt("resumed {} of {} stages from {}\n",
                           study.stages_resumed(),
                           core::Study::stage_table().size(),
                           store->dir().string());
  return 0;
}
