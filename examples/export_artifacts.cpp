// Interchange demo: export a study's raw artifacts in the formats the
// rest of the ecosystem speaks — Bro/Zeek-style TSV logs for the capture
// and an RFC-1035 master file for a domain's zone — then re-import both
// to show the round trip is lossless.
//
//   ./examples/export_artifacts [output_dir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "dns/zonefile.h"
#include "pcap/flow.h"
#include "proto/logfile.h"
#include "synth/traffic.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace cs;
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : "/tmp/cloudscope_artifacts";
  std::filesystem::create_directories(dir);

  synth::WorldConfig world_config;
  world_config.domain_count = 200;
  synth::World world{world_config};

  // 1. The capture, as Zeek logs.
  synth::TrafficConfig traffic_config;
  traffic_config.total_web_bytes = 4ull * 1024 * 1024;
  synth::TrafficGenerator generator{world, traffic_config};
  pcap::FlowTable table;
  for (const auto& packet : generator.generate()) table.add(packet);
  const auto logs = proto::analyze_flows(table.finish());

  auto write = [&dir](const std::string& name, const std::string& text) {
    std::ofstream out{dir / name};
    out << text;
    std::cout << "wrote " << (dir / name).string() << " ("
              << text.size() << " bytes)\n";
  };
  write("conn.log", proto::to_conn_log(logs));
  write("http.log", proto::to_http_log(logs));
  write("ssl.log", proto::to_ssl_log(logs));

  // Round trip check.
  const auto reparsed = proto::parse_conn_log(proto::to_conn_log(logs));
  std::cout << util::fmt("conn.log round trip: {} of {} records\n",
                         reparsed.size(), logs.conns.size());

  // 2. A domain zone, as a master file pulled over AXFR-like access.
  auto resolver = world.make_resolver(net::Ipv4(199, 16, 0, 10));
  for (const auto& domain : world.domains()) {
    if (!domain.axfr_open || !domain.cloud_using()) continue;
    const auto records = resolver.try_axfr(domain.name);
    if (!records) continue;
    // Rebuild a zone object from the transfer and serialize it.
    dns::SoaRecord soa;
    for (const auto& rr : *records)
      if (const auto* s = std::get_if<dns::SoaRecord>(&rr.data)) soa = *s;
    dns::Zone zone{domain.name, soa};
    for (const auto& rr : *records)
      if (rr.type() != dns::RrType::kSoa) zone.add(rr);
    const auto text = dns::to_zonefile(zone);
    write(domain.name.to_string() + ".zone", text);

    const auto parsed = dns::parse_zonefile(text);
    std::cout << util::fmt(
        "zone round trip: {} records, {} parse errors\n",
        parsed.zone ? parsed.zone->record_count() : 0,
        parsed.errors.size());
    break;  // one exemplar is enough
  }
  return 0;
}
