// Capture forensics: write a week-long synthetic border capture to a
// real pcap file, read it back cold (as any pcap tool would), and run
// the Bro-style analysis over it.
//
//   ./examples/capture_forensics [output.pcap]
//
// Demonstrates the packet pipeline end to end: TrafficGenerator ->
// PcapWriter -> PcapReader -> FlowTable -> proto::analyze_flows ->
// analysis::analyze_capture.
#include <iostream>

#include "analysis/capture.h"
#include "core/report.h"
#include "pcap/file.h"
#include "pcap/flow.h"
#include "synth/traffic.h"
#include "util/format.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace cs;
  const std::string path = argc > 1 ? argv[1] : "/tmp/cloudscope_border.pcap";

  synth::WorldConfig world_config;
  world_config.domain_count = 400;
  synth::World world{world_config};

  synth::TrafficConfig traffic_config;
  traffic_config.total_web_bytes = 24ull * 1024 * 1024;
  std::cout << "Synthesizing one week of border traffic into " << path
            << " ...\n";
  synth::TrafficGenerator generator{world, traffic_config};
  generator.generate_to_file(path);

  // Cold read, exactly as tcpdump/Bro would consume the artifact.
  pcap::PcapReader reader{path};
  pcap::FlowTable table;
  while (const auto packet = reader.next()) table.add(*packet);
  std::cout << util::fmt("Read {} packets; {} undecodable.\n",
                         reader.packets_read(), table.undecodable_packets());

  const auto logs = proto::analyze_flows(table.finish());
  std::cout << util::fmt(
      "Assembled {} flows ({} HTTP responses, {} TLS handshakes).\n\n",
      logs.conns.size(), logs.http.size(), logs.ssl.size());

  analysis::CloudRanges ranges{world.ec2(), world.azure()};
  std::map<std::string, std::size_t> rank_of;
  for (const auto& domain : world.domains())
    rank_of[domain.name.to_string()] = domain.rank;
  const auto report = analysis::analyze_capture(logs, ranges, rank_of);

  std::cout << core::render_table1(report) << "\n";
  std::cout << core::render_table2(report) << "\n";
  std::cout << core::render_table5(report) << "\n";
  std::cout << core::render_table6(report);
  return 0;
}
