// Quickstart: build a small synthetic universe, run the paper's
// measurement pipeline over it, and print the headline numbers.
//
//   ./examples/quickstart [domain_count]
//
// This is the five-minute tour of the public API: World (the simulated
// internet), Study (the cached pipeline), and the report renderers.
#include <cstdlib>
#include <iostream>

#include "core/report.h"
#include "core/study.h"
#include "util/format.h"

int main(int argc, char** argv) {
  using namespace cs;

  core::StudyConfig config;
  config.world.domain_count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800;
  config.traffic.total_web_bytes = 16ull * 1024 * 1024;

  std::cout << "Building a universe of " << config.world.domain_count
            << " ranked domains...\n";
  core::Study study{config};

  // Who uses the cloud? (§3.2)
  const auto& usage = study.cloud_usage();
  std::cout << util::fmt(
      "\n{} of {} domains ({:.1f}%) have a cloud-using subdomain.\n",
      usage.domains.total, config.world.domain_count,
      100.0 * usage.domains.total / config.world.domain_count);
  std::cout << core::render_table3(usage) << "\n";

  // How do they deploy? (§4)
  const auto& patterns = study.patterns();
  std::cout << core::render_table7(patterns) << "\n";

  // Where do they deploy? (§4.2)
  const auto& regions = study.regions();
  std::cout << util::fmt(
      "Single-region subdomains: EC2 {:.1f}%, Azure {:.1f}% — the paper's "
      "central fragility finding.\n\n",
      100.0 * regions.ec2_single_region_fraction,
      100.0 * regions.azure_single_region_fraction);

  // What would multi-region buy them? (§5.1)
  const auto k_results = analysis::optimal_k_regions(study.campaign());
  std::cout << core::render_fig12(k_results);
  if (k_results.size() >= 3)
    std::cout << util::fmt(
        "\nGoing from 1 to 3 regions cuts average client latency by "
        "{:.0f}%.\n",
        100.0 * (1.0 - k_results[2].avg_rtt_ms / k_results[0].avg_rtt_ms));
  return 0;
}
