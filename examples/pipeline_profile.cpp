// Pipeline profiler: runs every stage of the study pipeline on the
// default universe and prints where the time and the work went — the
// span tree, the per-stage summary table, the process resource bill
// (CPU, peak RSS), and the DNS/pcap work counters.
//
//   ./examples/pipeline_profile [domain_count]
//
// Set CS_TRACE=out.json to additionally write the Chrome trace-event file
// (open it in chrome://tracing or https://ui.perfetto.dev — the RSS and
// queue-depth counter lanes sampled at stage boundaries render there
// too), and CS_BENCH_JSON=out.json to write the full obs::RunReport
// sidecar, the same shape the bench binaries feed into csbench.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/study.h"
#include "exec/config.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cs;

  // Collect spans even when CS_TRACE is unset — the report below needs them.
  obs::Tracer::instance().enable_collection();

  core::StudyConfig config;
  config.world.domain_count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;

  std::cout << util::fmt("Profiling the full pipeline over {} domains...\n\n",
                         config.world.domain_count);

  core::Study study{config};
  // Touch every stage in pipeline order; Study caches each result.
  study.ranges();
  study.rank_map();
  study.dataset();
  study.cloud_usage();
  study.patterns();
  study.regions();
  study.capture_logs();
  study.capture();
  study.zone_study();
  study.campaign();
  study.isp_study();

  // ---- span tree (events are recorded in open order = pre-order).
  // Repeated same-name siblings (one dns.enumerate per domain) collapse
  // into one line with a count.
  const auto events = obs::Tracer::instance().events();
  std::cout << "Span tree:\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    std::uint64_t total_us = event.dur_us;
    std::size_t repeats = 1;
    while (i + 1 < events.size() &&
           events[i + 1].name == event.name &&
           events[i + 1].parent == event.parent) {
      total_us += events[++i].dur_us;
      ++repeats;
    }
    std::cout << util::fmt("{}{}{}  {:.1f} ms\n",
                           std::string(2 * event.depth, ' '), event.name,
                           repeats > 1 ? util::fmt(" x{}", repeats) : "",
                           total_us / 1000.0);
  }

  std::cout << "\n" << obs::Tracer::instance().render_summary() << "\n";

  // ---- the unified run report -------------------------------------------
  // One capture covers everything below: resource bill, percentiles, and
  // the counter table all read the same consistent snapshot.
  auto report = obs::RunReport::capture("pipeline_profile");
  report.threads = exec::thread_count();

  const auto& usage = report.resources;
  std::cout << util::fmt(
      "Resources: {:.0f} ms user + {:.0f} ms system CPU, peak RSS {:.1f} "
      "MiB ({} threads)\n",
      usage.user_cpu_us / 1000.0, usage.system_cpu_us / 1000.0,
      usage.peak_rss_kb / 1024.0, report.threads);
  for (const auto& h : report.metrics.histograms)
    if (h.count > 0)
      std::cout << util::fmt("{}: p50 {:.1f} / p90 {:.1f} / p99 {:.1f} "
                             "({} samples)\n",
                             h.name, h.quantile(0.50), h.quantile(0.90),
                             h.quantile(0.99), h.count);
  std::cout << "\n";

  if (const auto sidecar = util::env_text("CS_BENCH_JSON"))
    if (report.write(*sidecar))
      std::cout << util::fmt("Wrote run report to {}\n\n", *sidecar);

  // ---- work counters ----------------------------------------------------
  const auto& snapshot = report.metrics;
  util::Table counters{{"counter", "value"}};
  counters.caption("Pipeline work counters");
  for (const auto& c : snapshot.counters) counters.add(c.name, c.value);
  std::cout << counters.render() << "\n";

  const auto queries = snapshot.counter("dns.server.queries");
  const auto nxdomain = snapshot.counter("dns.server.nxdomain");
  if (queries > 0)
    std::cout << util::fmt(
        "DNS: {} authoritative queries served, {:.1f}% NXDOMAIN, "
        "{} AXFR granted / {} refused.\n",
        queries, 100.0 * nxdomain / queries,
        snapshot.counter("dns.server.axfr_granted"),
        snapshot.counter("dns.server.axfr_refused"));
  std::cout << util::fmt(
      "pcap: {} packets decoded ({} bytes), {} truncated, {} flows "
      "assembled.\n",
      snapshot.counter("pcap.decode.packets"),
      snapshot.counter("pcap.decode.bytes"),
      snapshot.counter("pcap.decode.truncated"),
      snapshot.counter("pcap.flow.flows"));
  return 0;
}
