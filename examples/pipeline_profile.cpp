// Pipeline profiler: runs every stage of the study pipeline on the
// default universe and prints where the time and the work went — the
// span tree, the per-stage summary table, and the DNS/pcap work counters.
//
//   ./examples/pipeline_profile [domain_count]
//
// Set CS_TRACE=out.json to additionally write the Chrome trace-event file
// (open it in chrome://tracing or https://ui.perfetto.dev).
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/study.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cs;

  // Collect spans even when CS_TRACE is unset — the report below needs them.
  obs::Tracer::instance().enable_collection();

  core::StudyConfig config;
  config.world.domain_count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;

  std::cout << util::fmt("Profiling the full pipeline over {} domains...\n\n",
                         config.world.domain_count);

  core::Study study{config};
  // Touch every stage in pipeline order; Study caches each result.
  study.ranges();
  study.rank_map();
  study.dataset();
  study.cloud_usage();
  study.patterns();
  study.regions();
  study.capture_logs();
  study.capture();
  study.zone_study();
  study.campaign();
  study.isp_study();

  // ---- span tree (events are recorded in open order = pre-order).
  // Repeated same-name siblings (one dns.enumerate per domain) collapse
  // into one line with a count.
  const auto events = obs::Tracer::instance().events();
  std::cout << "Span tree:\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    std::uint64_t total_us = event.dur_us;
    std::size_t repeats = 1;
    while (i + 1 < events.size() &&
           events[i + 1].name == event.name &&
           events[i + 1].parent == event.parent) {
      total_us += events[++i].dur_us;
      ++repeats;
    }
    std::cout << util::fmt("{}{}{}  {:.1f} ms\n",
                           std::string(2 * event.depth, ' '), event.name,
                           repeats > 1 ? util::fmt(" x{}", repeats) : "",
                           total_us / 1000.0);
  }

  std::cout << "\n" << obs::Tracer::instance().render_summary() << "\n";

  // ---- work counters ----------------------------------------------------
  const auto snapshot = obs::MetricsRegistry::instance().snapshot();
  util::Table counters{{"counter", "value"}};
  counters.caption("Pipeline work counters");
  for (const auto& c : snapshot.counters) counters.add(c.name, c.value);
  std::cout << counters.render() << "\n";

  const auto queries = snapshot.counter("dns.server.queries");
  const auto nxdomain = snapshot.counter("dns.server.nxdomain");
  if (queries > 0)
    std::cout << util::fmt(
        "DNS: {} authoritative queries served, {:.1f}% NXDOMAIN, "
        "{} AXFR granted / {} refused.\n",
        queries, 100.0 * nxdomain / queries,
        snapshot.counter("dns.server.axfr_granted"),
        snapshot.counter("dns.server.axfr_refused"));
  std::cout << util::fmt(
      "pcap: {} packets decoded ({} bytes), {} truncated, {} flows "
      "assembled.\n",
      snapshot.counter("pcap.decode.packets"),
      snapshot.counter("pcap.decode.bytes"),
      snapshot.counter("pcap.decode.truncated"),
      snapshot.counter("pcap.flow.flows"));
  return 0;
}
