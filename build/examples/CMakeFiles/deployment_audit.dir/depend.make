# Empty dependencies file for deployment_audit.
# This may be replaced when dependencies are built.
