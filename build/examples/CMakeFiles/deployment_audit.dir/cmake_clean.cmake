file(REMOVE_RECURSE
  "CMakeFiles/deployment_audit.dir/deployment_audit.cpp.o"
  "CMakeFiles/deployment_audit.dir/deployment_audit.cpp.o.d"
  "deployment_audit"
  "deployment_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
