file(REMOVE_RECURSE
  "CMakeFiles/widearea_planner.dir/widearea_planner.cpp.o"
  "CMakeFiles/widearea_planner.dir/widearea_planner.cpp.o.d"
  "widearea_planner"
  "widearea_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widearea_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
