# Empty dependencies file for widearea_planner.
# This may be replaced when dependencies are built.
