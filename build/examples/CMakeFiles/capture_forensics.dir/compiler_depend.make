# Empty compiler generated dependencies file for capture_forensics.
# This may be replaced when dependencies are built.
