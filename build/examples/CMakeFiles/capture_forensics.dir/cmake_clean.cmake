file(REMOVE_RECURSE
  "CMakeFiles/capture_forensics.dir/capture_forensics.cpp.o"
  "CMakeFiles/capture_forensics.dir/capture_forensics.cpp.o.d"
  "capture_forensics"
  "capture_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
