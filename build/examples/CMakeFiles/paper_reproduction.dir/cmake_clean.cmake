file(REMOVE_RECURSE
  "CMakeFiles/paper_reproduction.dir/paper_reproduction.cpp.o"
  "CMakeFiles/paper_reproduction.dir/paper_reproduction.cpp.o.d"
  "paper_reproduction"
  "paper_reproduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_reproduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
