# Empty dependencies file for paper_reproduction.
# This may be replaced when dependencies are built.
