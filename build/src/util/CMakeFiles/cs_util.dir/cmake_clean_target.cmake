file(REMOVE_RECURSE
  "libcs_util.a"
)
