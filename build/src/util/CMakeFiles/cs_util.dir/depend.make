# Empty dependencies file for cs_util.
# This may be replaced when dependencies are built.
