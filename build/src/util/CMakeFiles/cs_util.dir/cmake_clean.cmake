file(REMOVE_RECURSE
  "CMakeFiles/cs_util.dir/cdf.cpp.o"
  "CMakeFiles/cs_util.dir/cdf.cpp.o.d"
  "CMakeFiles/cs_util.dir/geo.cpp.o"
  "CMakeFiles/cs_util.dir/geo.cpp.o.d"
  "CMakeFiles/cs_util.dir/rng.cpp.o"
  "CMakeFiles/cs_util.dir/rng.cpp.o.d"
  "CMakeFiles/cs_util.dir/stats.cpp.o"
  "CMakeFiles/cs_util.dir/stats.cpp.o.d"
  "CMakeFiles/cs_util.dir/strings.cpp.o"
  "CMakeFiles/cs_util.dir/strings.cpp.o.d"
  "CMakeFiles/cs_util.dir/table.cpp.o"
  "CMakeFiles/cs_util.dir/table.cpp.o.d"
  "libcs_util.a"
  "libcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
