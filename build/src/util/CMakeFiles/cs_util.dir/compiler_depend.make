# Empty compiler generated dependencies file for cs_util.
# This may be replaced when dependencies are built.
