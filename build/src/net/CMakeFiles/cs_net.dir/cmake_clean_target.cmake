file(REMOVE_RECURSE
  "libcs_net.a"
)
