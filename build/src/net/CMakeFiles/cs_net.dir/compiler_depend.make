# Empty compiler generated dependencies file for cs_net.
# This may be replaced when dependencies are built.
