file(REMOVE_RECURSE
  "CMakeFiles/cs_net.dir/checksum.cpp.o"
  "CMakeFiles/cs_net.dir/checksum.cpp.o.d"
  "CMakeFiles/cs_net.dir/five_tuple.cpp.o"
  "CMakeFiles/cs_net.dir/five_tuple.cpp.o.d"
  "CMakeFiles/cs_net.dir/ipv4.cpp.o"
  "CMakeFiles/cs_net.dir/ipv4.cpp.o.d"
  "libcs_net.a"
  "libcs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
