# Empty dependencies file for cs_synth.
# This may be replaced when dependencies are built.
