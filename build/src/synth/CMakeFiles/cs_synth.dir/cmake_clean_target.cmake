file(REMOVE_RECURSE
  "libcs_synth.a"
)
