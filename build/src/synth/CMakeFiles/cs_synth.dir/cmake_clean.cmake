file(REMOVE_RECURSE
  "CMakeFiles/cs_synth.dir/traffic.cpp.o"
  "CMakeFiles/cs_synth.dir/traffic.cpp.o.d"
  "CMakeFiles/cs_synth.dir/world.cpp.o"
  "CMakeFiles/cs_synth.dir/world.cpp.o.d"
  "libcs_synth.a"
  "libcs_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
