
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/capture.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/capture.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/capture.cpp.o.d"
  "/root/repo/src/analysis/cloud_usage.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/cloud_usage.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/cloud_usage.cpp.o.d"
  "/root/repo/src/analysis/cost.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/cost.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/cost.cpp.o.d"
  "/root/repo/src/analysis/dataset.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/dataset.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/dataset.cpp.o.d"
  "/root/repo/src/analysis/isp.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/isp.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/isp.cpp.o.d"
  "/root/repo/src/analysis/outage.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/outage.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/outage.cpp.o.d"
  "/root/repo/src/analysis/patterns.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/patterns.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/patterns.cpp.o.d"
  "/root/repo/src/analysis/ranges.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/ranges.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/ranges.cpp.o.d"
  "/root/repo/src/analysis/regions.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/regions.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/regions.cpp.o.d"
  "/root/repo/src/analysis/routing.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/routing.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/routing.cpp.o.d"
  "/root/repo/src/analysis/widearea.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/widearea.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/widearea.cpp.o.d"
  "/root/repo/src/analysis/zones.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/zones.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/cs_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/carto/CMakeFiles/cs_carto.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/cs_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/cs_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/internet/CMakeFiles/cs_internet.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cs_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/cs_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
