file(REMOVE_RECURSE
  "CMakeFiles/cs_analysis.dir/capture.cpp.o"
  "CMakeFiles/cs_analysis.dir/capture.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/cloud_usage.cpp.o"
  "CMakeFiles/cs_analysis.dir/cloud_usage.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/cost.cpp.o"
  "CMakeFiles/cs_analysis.dir/cost.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/dataset.cpp.o"
  "CMakeFiles/cs_analysis.dir/dataset.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/isp.cpp.o"
  "CMakeFiles/cs_analysis.dir/isp.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/outage.cpp.o"
  "CMakeFiles/cs_analysis.dir/outage.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/patterns.cpp.o"
  "CMakeFiles/cs_analysis.dir/patterns.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/ranges.cpp.o"
  "CMakeFiles/cs_analysis.dir/ranges.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/regions.cpp.o"
  "CMakeFiles/cs_analysis.dir/regions.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/routing.cpp.o"
  "CMakeFiles/cs_analysis.dir/routing.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/widearea.cpp.o"
  "CMakeFiles/cs_analysis.dir/widearea.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/zones.cpp.o"
  "CMakeFiles/cs_analysis.dir/zones.cpp.o.d"
  "libcs_analysis.a"
  "libcs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
