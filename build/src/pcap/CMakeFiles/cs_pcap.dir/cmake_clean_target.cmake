file(REMOVE_RECURSE
  "libcs_pcap.a"
)
