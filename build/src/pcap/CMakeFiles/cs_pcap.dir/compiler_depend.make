# Empty compiler generated dependencies file for cs_pcap.
# This may be replaced when dependencies are built.
