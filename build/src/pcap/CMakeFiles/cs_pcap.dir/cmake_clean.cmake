file(REMOVE_RECURSE
  "CMakeFiles/cs_pcap.dir/decode.cpp.o"
  "CMakeFiles/cs_pcap.dir/decode.cpp.o.d"
  "CMakeFiles/cs_pcap.dir/file.cpp.o"
  "CMakeFiles/cs_pcap.dir/file.cpp.o.d"
  "CMakeFiles/cs_pcap.dir/flow.cpp.o"
  "CMakeFiles/cs_pcap.dir/flow.cpp.o.d"
  "libcs_pcap.a"
  "libcs_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
