
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcap/decode.cpp" "src/pcap/CMakeFiles/cs_pcap.dir/decode.cpp.o" "gcc" "src/pcap/CMakeFiles/cs_pcap.dir/decode.cpp.o.d"
  "/root/repo/src/pcap/file.cpp" "src/pcap/CMakeFiles/cs_pcap.dir/file.cpp.o" "gcc" "src/pcap/CMakeFiles/cs_pcap.dir/file.cpp.o.d"
  "/root/repo/src/pcap/flow.cpp" "src/pcap/CMakeFiles/cs_pcap.dir/flow.cpp.o" "gcc" "src/pcap/CMakeFiles/cs_pcap.dir/flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
