file(REMOVE_RECURSE
  "libcs_cloud.a"
)
