# Empty compiler generated dependencies file for cs_cloud.
# This may be replaced when dependencies are built.
