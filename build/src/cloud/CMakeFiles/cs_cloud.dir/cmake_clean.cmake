file(REMOVE_RECURSE
  "CMakeFiles/cs_cloud.dir/features.cpp.o"
  "CMakeFiles/cs_cloud.dir/features.cpp.o.d"
  "CMakeFiles/cs_cloud.dir/provider.cpp.o"
  "CMakeFiles/cs_cloud.dir/provider.cpp.o.d"
  "libcs_cloud.a"
  "libcs_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
