file(REMOVE_RECURSE
  "CMakeFiles/cs_carto.dir/latency_zone.cpp.o"
  "CMakeFiles/cs_carto.dir/latency_zone.cpp.o.d"
  "CMakeFiles/cs_carto.dir/proximity.cpp.o"
  "CMakeFiles/cs_carto.dir/proximity.cpp.o.d"
  "libcs_carto.a"
  "libcs_carto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_carto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
