# Empty dependencies file for cs_carto.
# This may be replaced when dependencies are built.
