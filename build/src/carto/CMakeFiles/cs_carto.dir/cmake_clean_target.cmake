file(REMOVE_RECURSE
  "libcs_carto.a"
)
