
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/classify.cpp" "src/proto/CMakeFiles/cs_proto.dir/classify.cpp.o" "gcc" "src/proto/CMakeFiles/cs_proto.dir/classify.cpp.o.d"
  "/root/repo/src/proto/http.cpp" "src/proto/CMakeFiles/cs_proto.dir/http.cpp.o" "gcc" "src/proto/CMakeFiles/cs_proto.dir/http.cpp.o.d"
  "/root/repo/src/proto/logfile.cpp" "src/proto/CMakeFiles/cs_proto.dir/logfile.cpp.o" "gcc" "src/proto/CMakeFiles/cs_proto.dir/logfile.cpp.o.d"
  "/root/repo/src/proto/logs.cpp" "src/proto/CMakeFiles/cs_proto.dir/logs.cpp.o" "gcc" "src/proto/CMakeFiles/cs_proto.dir/logs.cpp.o.d"
  "/root/repo/src/proto/tls.cpp" "src/proto/CMakeFiles/cs_proto.dir/tls.cpp.o" "gcc" "src/proto/CMakeFiles/cs_proto.dir/tls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcap/CMakeFiles/cs_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
