file(REMOVE_RECURSE
  "CMakeFiles/cs_proto.dir/classify.cpp.o"
  "CMakeFiles/cs_proto.dir/classify.cpp.o.d"
  "CMakeFiles/cs_proto.dir/http.cpp.o"
  "CMakeFiles/cs_proto.dir/http.cpp.o.d"
  "CMakeFiles/cs_proto.dir/logfile.cpp.o"
  "CMakeFiles/cs_proto.dir/logfile.cpp.o.d"
  "CMakeFiles/cs_proto.dir/logs.cpp.o"
  "CMakeFiles/cs_proto.dir/logs.cpp.o.d"
  "CMakeFiles/cs_proto.dir/tls.cpp.o"
  "CMakeFiles/cs_proto.dir/tls.cpp.o.d"
  "libcs_proto.a"
  "libcs_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
