file(REMOVE_RECURSE
  "CMakeFiles/cs_internet.dir/model.cpp.o"
  "CMakeFiles/cs_internet.dir/model.cpp.o.d"
  "CMakeFiles/cs_internet.dir/traceroute.cpp.o"
  "CMakeFiles/cs_internet.dir/traceroute.cpp.o.d"
  "CMakeFiles/cs_internet.dir/vantage.cpp.o"
  "CMakeFiles/cs_internet.dir/vantage.cpp.o.d"
  "libcs_internet.a"
  "libcs_internet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_internet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
