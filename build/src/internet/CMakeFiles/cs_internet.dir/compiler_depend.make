# Empty compiler generated dependencies file for cs_internet.
# This may be replaced when dependencies are built.
