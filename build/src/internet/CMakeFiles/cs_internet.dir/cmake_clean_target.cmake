file(REMOVE_RECURSE
  "libcs_internet.a"
)
