file(REMOVE_RECURSE
  "CMakeFiles/cs_dns.dir/enumerate.cpp.o"
  "CMakeFiles/cs_dns.dir/enumerate.cpp.o.d"
  "CMakeFiles/cs_dns.dir/message.cpp.o"
  "CMakeFiles/cs_dns.dir/message.cpp.o.d"
  "CMakeFiles/cs_dns.dir/name.cpp.o"
  "CMakeFiles/cs_dns.dir/name.cpp.o.d"
  "CMakeFiles/cs_dns.dir/resolver.cpp.o"
  "CMakeFiles/cs_dns.dir/resolver.cpp.o.d"
  "CMakeFiles/cs_dns.dir/rr.cpp.o"
  "CMakeFiles/cs_dns.dir/rr.cpp.o.d"
  "CMakeFiles/cs_dns.dir/server.cpp.o"
  "CMakeFiles/cs_dns.dir/server.cpp.o.d"
  "CMakeFiles/cs_dns.dir/transport.cpp.o"
  "CMakeFiles/cs_dns.dir/transport.cpp.o.d"
  "CMakeFiles/cs_dns.dir/wordlist.cpp.o"
  "CMakeFiles/cs_dns.dir/wordlist.cpp.o.d"
  "CMakeFiles/cs_dns.dir/zone.cpp.o"
  "CMakeFiles/cs_dns.dir/zone.cpp.o.d"
  "CMakeFiles/cs_dns.dir/zonefile.cpp.o"
  "CMakeFiles/cs_dns.dir/zonefile.cpp.o.d"
  "libcs_dns.a"
  "libcs_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
