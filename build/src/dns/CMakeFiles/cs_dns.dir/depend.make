# Empty dependencies file for cs_dns.
# This may be replaced when dependencies are built.
