file(REMOVE_RECURSE
  "libcs_dns.a"
)
