# Empty dependencies file for bench_ext_cost_frontier.
# This may be replaced when dependencies are built.
