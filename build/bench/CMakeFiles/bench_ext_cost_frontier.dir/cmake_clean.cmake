file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cost_frontier.dir/bench_ext_cost_frontier.cpp.o"
  "CMakeFiles/bench_ext_cost_frontier.dir/bench_ext_cost_frontier.cpp.o.d"
  "bench_ext_cost_frontier"
  "bench_ext_cost_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cost_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
