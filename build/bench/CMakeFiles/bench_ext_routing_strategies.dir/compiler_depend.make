# Empty compiler generated dependencies file for bench_ext_routing_strategies.
# This may be replaced when dependencies are built.
