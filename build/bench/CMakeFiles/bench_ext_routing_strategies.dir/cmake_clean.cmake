file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_routing_strategies.dir/bench_ext_routing_strategies.cpp.o"
  "CMakeFiles/bench_ext_routing_strategies.dir/bench_ext_routing_strategies.cpp.o.d"
  "bench_ext_routing_strategies"
  "bench_ext_routing_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_routing_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
