# Empty dependencies file for bench_fig4_feature_cdfs.
# This may be replaced when dependencies are built.
