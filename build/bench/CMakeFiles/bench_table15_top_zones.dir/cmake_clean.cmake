file(REMOVE_RECURSE
  "CMakeFiles/bench_table15_top_zones.dir/bench_table15_top_zones.cpp.o"
  "CMakeFiles/bench_table15_top_zones.dir/bench_table15_top_zones.cpp.o.d"
  "bench_table15_top_zones"
  "bench_table15_top_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table15_top_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
