# Empty dependencies file for bench_table15_top_zones.
# This may be replaced when dependencies are built.
