# Empty dependencies file for bench_table14_zone_usage.
# This may be replaced when dependencies are built.
