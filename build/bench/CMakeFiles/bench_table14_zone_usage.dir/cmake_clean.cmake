file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_zone_usage.dir/bench_table14_zone_usage.cpp.o"
  "CMakeFiles/bench_table14_zone_usage.dir/bench_table14_zone_usage.cpp.o.d"
  "bench_table14_zone_usage"
  "bench_table14_zone_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_zone_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
