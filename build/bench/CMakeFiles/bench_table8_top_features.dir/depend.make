# Empty dependencies file for bench_table8_top_features.
# This may be replaced when dependencies are built.
