
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_region_outage.cpp" "bench/CMakeFiles/bench_ext_region_outage.dir/bench_ext_region_outage.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_region_outage.dir/bench_ext_region_outage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/carto/CMakeFiles/cs_carto.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/cs_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/cs_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/cs_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/internet/CMakeFiles/cs_internet.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cs_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/cs_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
