file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_region_outage.dir/bench_ext_region_outage.cpp.o"
  "CMakeFiles/bench_ext_region_outage.dir/bench_ext_region_outage.cpp.o.d"
  "bench_ext_region_outage"
  "bench_ext_region_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_region_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
