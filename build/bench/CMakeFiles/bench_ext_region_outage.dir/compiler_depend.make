# Empty compiler generated dependencies file for bench_ext_region_outage.
# This may be replaced when dependencies are built.
