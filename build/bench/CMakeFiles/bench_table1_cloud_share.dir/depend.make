# Empty dependencies file for bench_table1_cloud_share.
# This may be replaced when dependencies are built.
