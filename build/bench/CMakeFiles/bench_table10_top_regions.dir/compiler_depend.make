# Empty compiler generated dependencies file for bench_table10_top_regions.
# This may be replaced when dependencies are built.
