# Empty dependencies file for bench_fig6_region_cdf.
# This may be replaced when dependencies are built.
