# Empty dependencies file for bench_fig11_region_flapping.
# This may be replaced when dependencies are built.
