# Empty dependencies file for bench_table12_latency_zones.
# This may be replaced when dependencies are built.
