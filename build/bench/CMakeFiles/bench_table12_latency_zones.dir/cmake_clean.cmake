file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_latency_zones.dir/bench_table12_latency_zones.cpp.o"
  "CMakeFiles/bench_table12_latency_zones.dir/bench_table12_latency_zones.cpp.o.d"
  "bench_table12_latency_zones"
  "bench_table12_latency_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_latency_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
