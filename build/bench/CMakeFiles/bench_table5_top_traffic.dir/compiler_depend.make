# Empty compiler generated dependencies file for bench_table5_top_traffic.
# This may be replaced when dependencies are built.
