# Empty compiler generated dependencies file for bench_table11_zone_rtt.
# This may be replaced when dependencies are built.
