file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_zone_rtt.dir/bench_table11_zone_rtt.cpp.o"
  "CMakeFiles/bench_table11_zone_rtt.dir/bench_table11_zone_rtt.cpp.o.d"
  "bench_table11_zone_rtt"
  "bench_table11_zone_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_zone_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
