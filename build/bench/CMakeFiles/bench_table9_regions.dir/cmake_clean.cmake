file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_regions.dir/bench_table9_regions.cpp.o"
  "CMakeFiles/bench_table9_regions.dir/bench_table9_regions.cpp.o.d"
  "bench_table9_regions"
  "bench_table9_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
