# Empty dependencies file for bench_table9_regions.
# This may be replaced when dependencies are built.
