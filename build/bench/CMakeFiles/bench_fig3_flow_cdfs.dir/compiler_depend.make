# Empty compiler generated dependencies file for bench_fig3_flow_cdfs.
# This may be replaced when dependencies are built.
