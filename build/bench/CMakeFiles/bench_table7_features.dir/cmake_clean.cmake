file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_features.dir/bench_table7_features.cpp.o"
  "CMakeFiles/bench_table7_features.dir/bench_table7_features.cpp.o.d"
  "bench_table7_features"
  "bench_table7_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
