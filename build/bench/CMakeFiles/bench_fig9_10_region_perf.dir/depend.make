# Empty dependencies file for bench_fig9_10_region_perf.
# This may be replaced when dependencies are built.
