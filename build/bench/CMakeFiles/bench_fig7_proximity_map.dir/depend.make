# Empty dependencies file for bench_fig7_proximity_map.
# This may be replaced when dependencies are built.
