file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_content_types.dir/bench_table6_content_types.cpp.o"
  "CMakeFiles/bench_table6_content_types.dir/bench_table6_content_types.cpp.o.d"
  "bench_table6_content_types"
  "bench_table6_content_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_content_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
