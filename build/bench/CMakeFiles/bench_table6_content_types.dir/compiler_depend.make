# Empty compiler generated dependencies file for bench_table6_content_types.
# This may be replaced when dependencies are built.
