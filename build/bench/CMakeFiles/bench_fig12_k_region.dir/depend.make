# Empty dependencies file for bench_fig12_k_region.
# This may be replaced when dependencies are built.
