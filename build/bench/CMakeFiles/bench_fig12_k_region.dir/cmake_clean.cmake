file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_k_region.dir/bench_fig12_k_region.cpp.o"
  "CMakeFiles/bench_fig12_k_region.dir/bench_fig12_k_region.cpp.o.d"
  "bench_fig12_k_region"
  "bench_fig12_k_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_k_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
