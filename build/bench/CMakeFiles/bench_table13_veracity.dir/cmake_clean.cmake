file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_veracity.dir/bench_table13_veracity.cpp.o"
  "CMakeFiles/bench_table13_veracity.dir/bench_table13_veracity.cpp.o.d"
  "bench_table13_veracity"
  "bench_table13_veracity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_veracity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
