# Empty dependencies file for bench_table13_veracity.
# This may be replaced when dependencies are built.
