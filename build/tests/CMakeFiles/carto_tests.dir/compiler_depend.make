# Empty compiler generated dependencies file for carto_tests.
# This may be replaced when dependencies are built.
