file(REMOVE_RECURSE
  "CMakeFiles/carto_tests.dir/carto_test.cpp.o"
  "CMakeFiles/carto_tests.dir/carto_test.cpp.o.d"
  "carto_tests"
  "carto_tests.pdb"
  "carto_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
