file(REMOVE_RECURSE
  "CMakeFiles/dns_hardening_test.dir/dns_hardening_test.cpp.o"
  "CMakeFiles/dns_hardening_test.dir/dns_hardening_test.cpp.o.d"
  "dns_hardening_test"
  "dns_hardening_test.pdb"
  "dns_hardening_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_hardening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
