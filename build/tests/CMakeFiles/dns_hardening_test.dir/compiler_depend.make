# Empty compiler generated dependencies file for dns_hardening_test.
# This may be replaced when dependencies are built.
