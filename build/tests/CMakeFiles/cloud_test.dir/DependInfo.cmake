
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cloud_features_test.cpp" "tests/CMakeFiles/cloud_test.dir/cloud_features_test.cpp.o" "gcc" "tests/CMakeFiles/cloud_test.dir/cloud_features_test.cpp.o.d"
  "/root/repo/tests/cloud_provider_test.cpp" "tests/CMakeFiles/cloud_test.dir/cloud_provider_test.cpp.o" "gcc" "tests/CMakeFiles/cloud_test.dir/cloud_provider_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/cs_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/cs_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
