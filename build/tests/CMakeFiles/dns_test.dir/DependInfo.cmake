
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dns_dynamic_answer_test.cpp" "tests/CMakeFiles/dns_test.dir/dns_dynamic_answer_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns_dynamic_answer_test.cpp.o.d"
  "/root/repo/tests/dns_enumerate_test.cpp" "tests/CMakeFiles/dns_test.dir/dns_enumerate_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns_enumerate_test.cpp.o.d"
  "/root/repo/tests/dns_message_test.cpp" "tests/CMakeFiles/dns_test.dir/dns_message_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns_message_test.cpp.o.d"
  "/root/repo/tests/dns_name_test.cpp" "tests/CMakeFiles/dns_test.dir/dns_name_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns_name_test.cpp.o.d"
  "/root/repo/tests/dns_resolver_test.cpp" "tests/CMakeFiles/dns_test.dir/dns_resolver_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns_resolver_test.cpp.o.d"
  "/root/repo/tests/dns_server_test.cpp" "tests/CMakeFiles/dns_test.dir/dns_server_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns_server_test.cpp.o.d"
  "/root/repo/tests/dns_zone_test.cpp" "tests/CMakeFiles/dns_test.dir/dns_zone_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns_zone_test.cpp.o.d"
  "/root/repo/tests/dns_zonefile_test.cpp" "tests/CMakeFiles/dns_test.dir/dns_zonefile_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns_zonefile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/cs_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
